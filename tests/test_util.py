"""Unit tests for repro._util (primality and validation helpers)."""

import pytest
from hypothesis import given, strategies as st

from repro._util import (
    check_positive,
    is_prime,
    mod,
    next_prime,
    primes_up_to,
)

KNOWN_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}


def test_is_prime_small_values():
    for value in range(-5, 50):
        assert is_prime(value) == (value in KNOWN_PRIMES)


def test_is_prime_squares_of_primes_are_composite():
    for p in (3, 5, 7, 11, 13):
        assert not is_prime(p * p)


def test_next_prime_from_prime_is_identity():
    for p in (2, 3, 5, 7, 23, 101):
        assert next_prime(p) == p


def test_next_prime_skips_composites():
    assert next_prime(8) == 11
    assert next_prime(9) == 11
    assert next_prime(24) == 29
    assert next_prime(-7) == 2
    assert next_prime(0) == 2


def test_primes_up_to():
    assert primes_up_to(1) == []
    assert primes_up_to(2) == [2]
    assert primes_up_to(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]


@given(st.integers(min_value=2, max_value=10_000))
def test_next_prime_is_prime_and_minimal(value):
    p = next_prime(value)
    assert p >= value
    assert is_prime(p)
    assert not any(is_prime(q) for q in range(value, p))


def test_check_positive_accepts_positive_ints():
    assert check_positive("x", 3) == 3


@pytest.mark.parametrize("bad", [0, -1, -100])
def test_check_positive_rejects_non_positive(bad):
    with pytest.raises(ValueError):
        check_positive("x", bad)


@pytest.mark.parametrize("bad", [1.5, "3", None, True])
def test_check_positive_rejects_non_ints(bad):
    with pytest.raises((TypeError, ValueError)):
        check_positive("x", bad)


@given(st.integers(-1000, 1000), st.integers(1, 97))
def test_mod_always_in_range(value, modulus):
    result = mod(value, modulus)
    assert 0 <= result < modulus
    assert (result - value) % modulus == 0
