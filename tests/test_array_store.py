"""Tests for the file-backed erasure-coded chunk store."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.store import ArrayStore, DiskFailedError

CHUNK = 512


@pytest.fixture()
def store(tmp_path):
    return ArrayStore(
        make_code("tip", 6), tmp_path, stripes=4, chunk_bytes=CHUNK
    )


def random_chunks(count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(count, CHUNK), dtype=np.uint8)


class TestBasics:
    def test_files_created(self, store, tmp_path):
        files = sorted(tmp_path.glob("disk*.img"))
        assert len(files) == 6
        expected = 4 * store.code.rows * CHUNK
        assert all(f.stat().st_size == expected for f in files)

    def test_capacity(self, store):
        assert store.capacity_chunks == 4 * store.code.num_data

    def test_roundtrip(self, store):
        data = random_chunks(10, seed=1)
        store.write_chunks(3, data)
        assert np.array_equal(store.read_chunks(3, 10), data)

    def test_write_spanning_stripes(self, store):
        per = store.code.num_data
        data = random_chunks(per + 5, seed=2)
        store.write_chunks(per - 3, data)
        assert np.array_equal(store.read_chunks(per - 3, per + 5), data)

    def test_scrub_clean_after_writes(self, store):
        store.write_chunks(0, random_chunks(20, seed=3))
        assert store.scrub() == []

    def test_scrub_detects_corruption(self, store, tmp_path):
        store.write_chunks(0, random_chunks(8, seed=4))
        # Flip a byte directly in a backing file (silent corruption).
        path = tmp_path / "disk002.img"
        raw = bytearray(path.read_bytes())
        raw[100] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.scrub() == [0]

    def test_bounds_checked(self, store):
        with pytest.raises(ValueError):
            store.write_chunks(-1, random_chunks(1))
        with pytest.raises(ValueError):
            store.write_chunks(store.capacity_chunks, random_chunks(1))
        with pytest.raises(ValueError):
            store.read_chunks(0, 0)
        with pytest.raises(ValueError):
            store.read_chunks(store.capacity_chunks - 1, 2)

    def test_chunk_shape_checked(self, store):
        with pytest.raises(ValueError):
            store.write_chunks(0, np.zeros((2, CHUNK + 1), dtype=np.uint8))

    def test_persistence_across_instances(self, tmp_path):
        code = make_code("tip", 6)
        data = random_chunks(6, seed=5)
        first = ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK)
        first.write_chunks(0, data)
        second = ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK)
        assert np.array_equal(second.read_chunks(0, 6), data)


class TestFailures:
    def test_degraded_read(self, store):
        data = random_chunks(store.code.num_data, seed=6)
        store.write_chunks(0, data)
        store.fail_disk(0)
        store.fail_disk(3)
        store.fail_disk(5)
        assert np.array_equal(
            store.read_chunks(0, store.code.num_data), data
        )

    def test_degraded_write_then_rebuild(self, store):
        initial = random_chunks(store.code.num_data, seed=7)
        store.write_chunks(0, initial)
        store.fail_disk(2)
        update = random_chunks(4, seed=8)
        store.write_chunks(1, update)
        rebuilt = store.rebuild()
        assert rebuilt == store.stripes
        assert store.failed == set()
        expected = initial.copy()
        expected[1:5] = update
        assert np.array_equal(
            store.read_chunks(0, store.code.num_data), expected
        )
        assert store.scrub() == []

    def test_rebuild_restores_disk_files(self, store, tmp_path):
        data = random_chunks(8, seed=9)
        store.write_chunks(0, data)
        before = (tmp_path / "disk001.img").read_bytes()
        store.fail_disk(1)
        assert (tmp_path / "disk001.img").read_bytes() != before
        store.rebuild()
        assert (tmp_path / "disk001.img").read_bytes() == before

    def test_fault_budget_enforced(self, store):
        for disk in (0, 1, 2):
            store.fail_disk(disk)
        with pytest.raises(DiskFailedError):
            store.fail_disk(3)

    def test_fail_disk_bounds(self, store):
        with pytest.raises(ValueError):
            store.fail_disk(99)

    def test_scrub_refuses_degraded(self, store):
        store.fail_disk(0)
        with pytest.raises(DiskFailedError):
            store.scrub()

    def test_rebuild_noop_when_healthy(self, store):
        assert store.rebuild() == 0

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ArrayStore(make_code("tip", 6), tmp_path, stripes=0)


class TestGeometryGuard:
    """Reopening with the wrong geometry must refuse, never wipe."""

    def test_stripe_count_mismatch_raises(self, tmp_path):
        code = make_code("tip", 6)
        first = ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK)
        data = random_chunks(6, seed=20)
        first.write_chunks(0, data)
        with pytest.raises(ValueError, match="geometry"):
            ArrayStore(code, tmp_path, stripes=8, chunk_bytes=CHUNK)
        # The contents survived the refused reopen.
        assert np.array_equal(first.read_chunks(0, 6), data)

    def test_chunk_size_mismatch_raises(self, tmp_path):
        code = make_code("tip", 6)
        before = ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK)
        before.write_chunks(0, random_chunks(4, seed=21))
        raw = (tmp_path / "disk000.img").read_bytes()
        with pytest.raises(ValueError, match="refusing to wipe"):
            ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK * 2)
        assert (tmp_path / "disk000.img").read_bytes() == raw

    def test_matching_geometry_reopens(self, tmp_path):
        code = make_code("tip", 6)
        data = random_chunks(3, seed=22)
        ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK).write_chunks(
            1, data
        )
        again = ArrayStore(code, tmp_path, stripes=4, chunk_bytes=CHUNK)
        assert np.array_equal(again.read_chunks(1, 3), data)


class TestRebuildCrashSafety:
    """An exception mid-rebuild must leave the store marked degraded."""

    def _crash_after(self, store, stripes_before_crash):
        """Patch _store_stripe to blow up partway through a rebuild."""
        original = store._store_stripe
        calls = {"n": 0}

        def crashing(stripe, data, writable=frozenset()):
            if calls["n"] >= stripes_before_crash:
                raise IOError("injected crash: backing device vanished")
            calls["n"] += 1
            original(stripe, data, writable=writable)

        store._store_stripe = crashing
        return original

    def test_mid_rebuild_crash_keeps_failed_marked(self, store):
        data = random_chunks(store.capacity_chunks, seed=23)
        store.write_chunks(0, data)
        store.fail_disk(2)
        original = self._crash_after(store, stripes_before_crash=1)
        with pytest.raises(IOError, match="injected crash"):
            store.rebuild()
        # Still degraded: the failure set was not cleared early.
        assert store.failed == {2}
        # Degraded reads still serve correct data for every chunk.
        assert np.array_equal(
            store.read_chunks(0, store.capacity_chunks), data
        )
        # A retry after the fault clears finishes the job.
        store._store_stripe = original
        assert store.rebuild() == store.stripes
        assert store.failed == set()
        assert store.scrub() == []
        assert np.array_equal(
            store.read_chunks(0, store.capacity_chunks), data
        )

    def test_crash_before_any_stripe(self, store):
        data = random_chunks(8, seed=24)
        store.write_chunks(0, data)
        store.fail_disk(0)
        self._crash_after(store, stripes_before_crash=0)
        with pytest.raises(IOError):
            store.rebuild()
        assert store.failed == {0}
        assert np.array_equal(store.read_chunks(0, 8), data)

    def test_decode_error_keeps_failed_marked(self, store, monkeypatch):
        store.write_chunks(0, random_chunks(4, seed=25))
        store.fail_disk(1)
        decoder = store._current_decoder()
        monkeypatch.setattr(
            type(decoder),
            "decode_columns",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("bad decode")),
        )
        with pytest.raises(RuntimeError, match="bad decode"):
            store.rebuild()
        assert store.failed == {1}


class TestCloseFlushAudit:
    """close()/__exit__ must flush the write-back cache, and must close
    the backing handles even when that flush raises."""

    def make_cached(self, tmp_path):
        return ArrayStore(
            make_code("tip", 6), tmp_path, stripes=4, chunk_bytes=CHUNK,
            cache_stripes=4,
        )

    def test_close_flushes_dirty_cache(self, tmp_path):
        store = self.make_cached(tmp_path)
        data = random_chunks(6, seed=31)
        store.write_chunks(0, data)
        assert len(store.cache.dirty_stripes) > 0
        store.close()
        reopened = ArrayStore(
            make_code("tip", 6), tmp_path, stripes=4, chunk_bytes=CHUNK
        )
        assert np.array_equal(reopened.read_chunks(0, 6), data)
        assert reopened.scrub() == []

    def test_context_manager_flushes_on_exception_path(self, tmp_path):
        data = random_chunks(6, seed=32)
        with pytest.raises(RuntimeError, match="app error"):
            with self.make_cached(tmp_path) as store:
                store.write_chunks(0, data)
                assert len(store.cache.dirty_stripes) > 0
                raise RuntimeError("app error")
        reopened = ArrayStore(
            make_code("tip", 6), tmp_path, stripes=4, chunk_bytes=CHUNK
        )
        assert np.array_equal(reopened.read_chunks(0, 6), data)
        assert reopened.scrub() == []

    def test_close_closes_handles_even_when_flush_raises(
        self, tmp_path, monkeypatch
    ):
        store = self.make_cached(tmp_path)
        store.write_chunks(0, random_chunks(2, seed=33))
        store.read_chunks(0, 1)  # force handles open
        assert store._handles
        monkeypatch.setattr(
            type(store.cache),
            "flush",
            lambda self: (_ for _ in ()).throw(IOError("flush failed")),
        )
        with pytest.raises(IOError, match="flush failed"):
            store.close()
        assert not store._handles  # handles released despite the error

    def test_close_idempotent_and_uncached_noop(self, store):
        store.write_chunks(0, random_chunks(2, seed=34))
        assert store.flush() == 0  # write-through: nothing pending
        store.close()
        store.close()  # second close is a no-op
        # Lazy reopen after close still works.
        assert store.read_chunks(0, 1).shape == (1, CHUNK)
