"""Tests for RMW vs RCW write-path strategy selection."""

import pytest

from repro.analysis import (
    choose_strategy,
    full_stripe_cost,
    rcw_cost,
    rmw_cost,
)
from repro.codes import make_code


@pytest.fixture(scope="module")
def tip8():
    return make_code("tip", 8)


class TestRmw:
    def test_prereads_equal_writes(self, tip8):
        positions = list(tip8.data_positions[:3])
        plan = rmw_cost(tip8, positions)
        assert plan.strategy == "rmw"
        assert plan.pre_reads == plan.writes

    def test_single_element_cost(self, tip8):
        plan = rmw_cost(tip8, [tip8.data_positions[0]])
        # TIP: 1 data + 3 parities, read and written.
        assert len(plan.writes) == 4
        assert plan.total_ios == 8


class TestRcw:
    def test_prereads_exclude_written_cells(self, tip8):
        positions = list(tip8.data_positions[:2])
        plan = rcw_cost(tip8, positions)
        assert plan.strategy == "rcw"
        assert not set(plan.pre_reads) & set(positions)

    def test_prereads_are_data_cells_only(self, tip8):
        from repro.codes.base import Cell

        plan = rcw_cost(tip8, [tip8.data_positions[0]])
        for row, col in plan.pre_reads:
            assert tip8.kind(row, col) == Cell.DATA

    def test_near_full_stripe_prefers_rcw(self, tip8):
        """Writing all but one data element: RCW reads just the leftover,
        RMW would re-read everything it writes."""
        positions = list(tip8.data_positions[:-1])
        rcw = rcw_cost(tip8, positions)
        rmw = rmw_cost(tip8, positions)
        assert rcw.total_ios < rmw.total_ios
        assert len(rcw.pre_reads) <= tip8.num_data - len(positions) + 2


class TestFullStripe:
    def test_touches_every_stored_element_twice(self, tip8):
        plan = full_stripe_cost(tip8)
        assert plan.strategy == "full-stripe"
        stored = len(tip8.nonempty_positions)
        assert len(plan.pre_reads) == stored
        assert len(plan.writes) == stored
        assert plan.total_ios == 2 * stored

    def test_single_chunk_rmw_beats_full_stripe(self, tip8):
        """The store's fast-path criterion: small RMW wins by a wide
        margin (8 element I/Os vs a whole stripe both ways)."""
        rmw = rmw_cost(tip8, [tip8.data_positions[0]])
        assert rmw.total_ios < full_stripe_cost(tip8).total_ios


class TestChoose:
    def test_small_write_prefers_rmw(self, tip8):
        plan = choose_strategy(tip8, [tip8.data_positions[0]])
        assert plan.strategy == "rmw"

    def test_large_write_prefers_rcw(self, tip8):
        plan = choose_strategy(tip8, list(tip8.data_positions[:-1]))
        assert plan.strategy == "rcw"

    def test_chooser_is_minimal(self, tip8):
        for count in (1, 2, 5, 10, tip8.num_data - 1):
            positions = list(tip8.data_positions[:count])
            chosen = choose_strategy(tip8, positions)
            assert chosen.total_ios == min(
                rmw_cost(tip8, positions).total_ios,
                rcw_cost(tip8, positions).total_ios,
            )

    def test_empty_positions_rejected(self, tip8):
        with pytest.raises(ValueError):
            choose_strategy(tip8, [])

    def test_same_writes_either_way(self, tip8):
        """Strategy changes pre-reads, never the written set."""
        positions = list(tip8.data_positions[:4])
        assert (
            rmw_cost(tip8, positions).writes
            == rcw_cost(tip8, positions).writes
        )


class TestControllerIntegration:
    def test_auto_strategy_never_issues_more_ios(self):
        from repro.disksim import RaidController
        from repro.traces import TraceRequest

        code = make_code("tip", 8)
        rmw = RaidController(code, 8192, write_strategy="rmw")
        auto = RaidController(code, 8192, write_strategy="auto")
        for chunks in (1, 3, 8, code.num_data - 1):
            request = TraceRequest(0.0, 0, chunks * 8192, True)
            assert (
                auto.plan(request).total_ios <= rmw.plan(request).total_ios
            )

    def test_invalid_strategy_rejected(self):
        from repro.disksim import RaidController

        with pytest.raises(ValueError):
            RaidController(make_code("tip", 6), 8192, write_strategy="nope")
