"""Tests for the write-complexity analysis (Figs. 10-11, Tables IV-V)."""

import pytest

from repro.analysis import (
    full_stripe_write_cost,
    improvement,
    partial_write_cost,
    single_write_cost,
    write_cost_for_run,
)
from repro.codes import make_code
from repro.codes.tip import TipCode


class TestSingleWrite:
    def test_tip_is_optimal_for_all_sizes(self):
        for n in (6, 8, 12, 14):
            assert single_write_cost(make_code("tip", n)) == 4.0

    def test_paper_table4_star_improvement_n6(self):
        """Table IV: TIP improves single-write over STAR by 14.29% at n=6."""
        tip = single_write_cost(make_code("tip", 6))
        star = single_write_cost(make_code("star", 6))
        assert improvement(star, tip) == pytest.approx(14.29, abs=0.01)

    def test_paper_table4_star_improvement_n8(self):
        """Table IV: 23.08% over STAR at n=8."""
        tip = single_write_cost(make_code("tip", 8))
        star = single_write_cost(make_code("star", 8))
        assert improvement(star, tip) == pytest.approx(23.08, abs=0.01)

    def test_ordering_matches_fig10(self):
        """Fig. 10's ordering at every evaluated size: TIP < STAR and all
        other baselines, HDD1 worst."""
        for n in (6, 8, 12, 14):
            costs = {
                fam: single_write_cost(make_code(fam, n))
                for fam in ("tip", "star", "triple-star", "cauchy-rs", "hdd1")
            }
            assert costs["tip"] == min(costs.values())
            assert costs["hdd1"] == max(costs.values())
            assert costs["tip"] < costs["star"] < costs["hdd1"]


class TestPartialWrite:
    def test_run_of_full_stripe_is_full_stripe_cost(self):
        code = TipCode(5)
        assert (
            write_cost_for_run(code, 0, code.num_data)
            == full_stripe_write_cost(code)
        )
        assert (
            write_cost_for_run(code, 3, code.num_data + 5)
            == full_stripe_write_cost(code)
        )

    def test_zero_length_run_costs_nothing(self):
        assert write_cost_for_run(TipCode(5), 0, 0) == 0

    def test_run_cost_counts_union_of_parities(self):
        """Two same-row consecutive TIP elements share the horizontal
        parity: 2 data + 1 horizontal + 2 diagonal + 2 anti = 7."""
        code = TipCode(5)
        # positions 0 and 1 are (0,0) and (0,2): same row.
        assert write_cost_for_run(code, 0, 2) == 7

    def test_partial_cost_between_bounds(self):
        for family in ("tip", "star", "triple-star"):
            code = make_code(family, 8)
            for length in (2, 3, 4, 5):
                cost = partial_write_cost(code, length)
                assert length < cost <= full_stripe_write_cost(code)

    def test_partial_length_one_equals_single(self):
        code = make_code("tip", 8)
        assert partial_write_cost(code, 1) == single_write_cost(code)

    def test_amortization_per_element_decreases(self):
        """Longer runs amortize parity updates: cost/l shrinks with l."""
        code = make_code("tip", 12)
        per_element = [
            partial_write_cost(code, run) / run for run in (1, 2, 4, 8)
        ]
        assert all(b < a for a, b in zip(per_element, per_element[1:]))

    def test_fig11_tip_beats_triple_star_l2(self):
        for n in (6, 8, 12):
            tip = partial_write_cost(make_code("tip", n), 2)
            ts = partial_write_cost(make_code("triple-star", n), 2)
            assert tip < ts


class TestFullStripe:
    def test_counts_all_stored_elements(self):
        code = TipCode(5)
        assert full_stripe_write_cost(code) == 24  # 12 data + 12 parity

    def test_mds_codes_share_full_stripe_cost_per_data(self):
        """MDS codes with the same geometry parameters write the same
        parity volume for a full stripe (the non-MDS disadvantage the
        paper cites does not apply here)."""
        tip = make_code("tip", 8)
        assert full_stripe_write_cost(tip) == tip.num_data + 3 * tip.rows


class TestImprovement:
    def test_improvement_formula(self):
        assert improvement(8.0, 4.0) == pytest.approx(50.0)
        assert improvement(4.0, 4.0) == 0.0

    def test_improvement_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)
