"""Tests for the fleet event queue, failure models, and repair scheduler."""

import numpy as np
import pytest

from repro.fleet import (
    Event,
    EventQueue,
    FailureModel,
    RepairBandwidth,
    RepairScheduler,
    make_failure_model,
)
from repro.fleet.events import FAILURE_MODELS
from repro.reliability import Exponential, Fixed, Weibull


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.schedule(5.0, "b", 1)
        q.schedule(1.0, "a", 2)
        q.schedule(3.0, "c", 3)
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_ties_pop_in_insertion_order(self):
        """The determinism keystone: simultaneous events (a rack event
        fanning out) pop exactly in scheduling order."""
        q = EventQueue()
        for subject in (9, 4, 7, 1):
            q.schedule(2.5, "tie", subject)
        assert [q.pop().subject for _ in range(4)] == [9, 4, 7, 1]

    def test_interleaved_ties_stay_fifo(self):
        q = EventQueue()
        q.schedule(1.0, "x", 0)
        q.schedule(0.5, "y", 1)
        q.schedule(1.0, "x", 2)
        got = [(q.pop().kind, q.pop().subject)]
        assert len(q) == 1
        assert got == [("y", 0)]  # first pop y, then the first x

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.schedule(1.0, "a", 0)
        assert q and len(q) == 1

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, "a", 0))


class TestFailureModel:
    def test_presets(self):
        independent = make_failure_model("independent")
        assert independent.machine_failure_rate == 0.0
        assert independent.burst_probability == 0.0
        correlated = make_failure_model("correlated")
        assert correlated.machine_failure_rate > 0
        assert correlated.burst_probability > 0

    def test_preset_mttf_override(self):
        model = make_failure_model("independent", mttf_hours=1234.0)
        assert model.disk_lifetime == Exponential(1234.0)

    def test_dict_spec_parses_distribution_fields(self):
        model = make_failure_model(
            {
                "disk_lifetime": "weibull:1.2:100000",
                "machine_failure_rate": 1e-3,
                "machine_downtime": "fixed:4",
            }
        )
        assert model.disk_lifetime == Weibull(1.2, 100_000.0)
        assert model.machine_downtime == Fixed(4.0)

    def test_passthrough(self):
        model = FailureModel()
        assert make_failure_model(model) is model

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown failure model"):
            make_failure_model("chaos")

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(latent_rate=-1.0)
        with pytest.raises(ValueError):
            FailureModel(burst_probability=1.5)
        with pytest.raises(ValueError):
            FailureModel(scrub_interval_hours=0.0)

    def test_disabled_rate_never_fires(self):
        model = FailureModel()
        rng = np.random.default_rng(0)
        assert model.next_poisson(0.0, rng) == float("inf")

    def test_disabled_burst_draws_nothing(self):
        """Stream invisibility: bursts off must not consume RNG."""
        model = FailureModel(burst_probability=0.0)
        rng = np.random.default_rng(1)
        before = rng.bit_generator.state["state"]["state"]
        assert model.burst_failures(rng, [1, 2, 3]) == []
        assert rng.bit_generator.state["state"]["state"] == before

    def test_burst_picks_candidates_within_window(self):
        model = FailureModel(
            burst_probability=1.0, burst_fanout=2, burst_window_hours=24.0
        )
        extra = model.burst_failures(np.random.default_rng(2), [10, 11, 12])
        assert len(extra) == 2
        for disk, delay in extra:
            assert disk in (10, 11, 12)
            assert 0.0 <= delay <= 24.0

    def test_registry_names(self):
        assert set(FAILURE_MODELS) == {"independent", "correlated"}


class TestRepairScheduler:
    def test_single_job_runs_at_disk_speed(self):
        bw = RepairBandwidth(disk_mib_s=50.0, cross_rack_mib_s=200.0)
        sched = RepairScheduler(bw)
        [(disk, finish, _)] = sched.start(0.0, disk=3, total_mib=50.0 * 3600)
        assert disk == 3
        assert finish == pytest.approx(1.0)  # one hour at 50 MiB/s

    def test_contention_stretches_all_jobs(self):
        """Four concurrent jobs share the 200 MiB/s pipe: 50 each, and a
        fifth drops everyone below disk speed."""
        bw = RepairBandwidth(disk_mib_s=50.0, cross_rack_mib_s=200.0)
        sched = RepairScheduler(bw)
        hour_mib = 50.0 * 3600
        for d in range(4):
            schedule = sched.start(0.0, d, hour_mib)
        assert all(f == pytest.approx(1.0) for _, f, _ in schedule)
        schedule = sched.start(0.0, 4, hour_mib)
        # 200/5 = 40 MiB/s each -> 1.25 h for a full-hour-at-50 job
        assert all(f == pytest.approx(1.25) for _, f, _ in schedule)

    def test_stale_completion_dropped_and_fresh_one_lands(self):
        bw = RepairBandwidth(disk_mib_s=50.0, cross_rack_mib_s=50.0)
        sched = RepairScheduler(bw)
        [(_, _, v1)] = sched.start(0.0, 0, 50.0 * 3600)
        sched.start(0.5, 1, 50.0 * 3600)  # re-paces job 0 -> v1 is stale
        done, _ = sched.complete(1.0, 0, v1)
        assert not done
        job = sched.jobs[0]
        done, reschedules = sched.complete(
            job.last_advance + job.remaining_mib / job.rate_mib_h,
            0,
            job.version,
        )
        assert done
        assert sched.repaired_mib == pytest.approx(50.0 * 3600)
        assert [d for d, _, _ in reschedules] == [1]

    def test_double_start_rejected(self):
        sched = RepairScheduler(RepairBandwidth())
        sched.start(0.0, 0, 100.0)
        with pytest.raises(ValueError, match="already"):
            sched.start(0.0, 0, 100.0)

    def test_bandwidth_validated(self):
        with pytest.raises(ValueError):
            RepairBandwidth(disk_mib_s=0.0)
