"""Unit and property tests for GF(2^w) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf import GF2w


@pytest.fixture(scope="module")
def gf8():
    return GF2w(8)


def test_instances_are_cached():
    assert GF2w(8) is GF2w(8)
    assert GF2w(4) is not GF2w(8)


@pytest.mark.parametrize("w", [1, 2, 3, 4, 8, 12, 16])
def test_tables_are_consistent(w):
    field = GF2w(w)
    # alpha^i round-trips through log
    for exp in range(field.max_element):
        assert field._log[field.alpha_power(exp)] == exp


def test_non_primitive_polynomial_rejected():
    # x^4 + x^3 + x^2 + x + 1 divides x^5 - 1: order 5, not primitive.
    with pytest.raises(ValueError):
        GF2w(4, poly=0b11111)


@pytest.mark.parametrize("w", [0, 17, -1])
def test_invalid_word_size_rejected(w):
    with pytest.raises(ValueError):
        GF2w(w)


@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_gf256_field_axioms(a, b, c):
    field = GF2w(8)
    # commutativity and associativity of multiplication
    assert field.mul(a, b) == field.mul(b, a)
    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
    # distributivity over XOR-addition
    assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)
    # identities
    assert field.mul(a, 1) == a
    assert field.mul(a, 0) == 0


@given(st.integers(1, 255))
def test_gf256_inverse(a):
    field = GF2w(8)
    assert field.mul(a, field.inv(a)) == 1
    assert field.div(1, a) == field.inv(a)


@given(st.integers(0, 255), st.integers(1, 255))
def test_gf256_division_roundtrip(a, b):
    field = GF2w(8)
    assert field.mul(field.div(a, b), b) == a


def test_zero_division_raises(gf8):
    with pytest.raises(ZeroDivisionError):
        gf8.div(5, 0)
    with pytest.raises(ZeroDivisionError):
        gf8.inv(0)
    with pytest.raises(ZeroDivisionError):
        gf8.pow(0, -1)


@given(st.integers(1, 255), st.integers(-10, 10))
def test_pow_matches_repeated_multiplication(a, e):
    field = GF2w(8)
    expected = 1
    base = a if e >= 0 else field.inv(a)
    for _ in range(abs(e)):
        expected = field.mul(expected, base)
    assert field.pow(a, e) == expected


def test_pow_zero_cases(gf8):
    assert gf8.pow(0, 0) == 1
    assert gf8.pow(0, 5) == 0


def test_mat_inv_roundtrip(gf8):
    rng = np.random.default_rng(42)
    for _ in range(10):
        size = rng.integers(1, 6)
        while True:
            mat = rng.integers(0, 256, size=(size, size), dtype=np.int64)
            try:
                inv = gf8.mat_inv(mat)
            except ValueError:
                continue
            break
        identity = gf8.mat_mul(mat, inv)
        assert np.array_equal(identity, np.eye(size, dtype=np.int64))


def test_mat_inv_singular_raises(gf8):
    singular = np.array([[1, 2], [1, 2]], dtype=np.int64)
    with pytest.raises(ValueError):
        gf8.mat_inv(singular)


def test_mat_mul_shape_mismatch(gf8):
    with pytest.raises(ValueError):
        gf8.mat_mul(np.zeros((2, 3)), np.zeros((2, 3)))


def test_mat_vec(gf8):
    mat = np.array([[1, 2], [3, 4]], dtype=np.int64)
    vec = np.array([5, 6], dtype=np.int64)
    expected = np.array(
        [gf8.mul(1, 5) ^ gf8.mul(2, 6), gf8.mul(3, 5) ^ gf8.mul(4, 6)]
    )
    assert np.array_equal(gf8.mat_vec(mat, vec), expected)


@given(st.integers(0, 255))
@settings(max_examples=30)
def test_mul_region_matches_scalar(constant):
    field = GF2w(8)
    region = np.arange(256, dtype=np.uint8)
    result = field.mul_region(constant, region)
    for value in (0, 1, 7, 100, 255):
        assert result[value] == field.mul(constant, value)


def test_mul_region_requires_w8():
    with pytest.raises(ValueError):
        GF2w(4).mul_region(3, np.zeros(4, dtype=np.uint8))


def test_mul_table_row_identity(gf8):
    table = gf8.mul_table_row(1)
    assert np.array_equal(table, np.arange(256, dtype=np.uint8))
    assert not gf8.mul_table_row(0).any()
