"""Tests for the compiled XOR execution engine.

Covers plan lowering (dead-code elimination, workspace liveness reuse),
compiled-vs-interpreted byte equivalence for every registered code,
cache-blocked tiling, multicore determinism, the schedule memo and the
LRU decoder cache.
"""

import itertools
import pickle

import numpy as np
import pytest

from repro.bitmatrix import (
    CompiledPlan,
    HostProfile,
    XorSchedule,
    naive_schedule,
    round_tile_bytes,
    set_host_profile,
    smart_schedule,
)
from repro.bitmatrix.plan import BUF_WS, TILE_ALIGN, _TILE_MAX, _WIDE_WORD_MIN
from repro.codec import (
    StripeCodec,
    encode_schedule_for,
    kernel_name,
    parallel_decode_into,
    parallel_encode_into,
    parallel_execute,
    shared_empty,
)
from repro.codec.parallel import split_spans
from repro.codes import make_code
from repro.codes.registry import CODE_FAMILIES, supports_size
from repro.store import ArrayStore


def small_code(family):
    """The smallest n >= 6 instance of a family (n >= 6 keeps the
    schedules non-trivial)."""
    n = next(n for n in range(6, 16) if supports_size(family, n))
    return make_code(family, n)


def random_matrix(rows, width, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, width), dtype=np.uint8)


def sub_maximal_patterns(code):
    """Every failure pattern of 1 up to ``code.faults`` columns."""
    for k in range(1, code.faults + 1):
        yield from itertools.combinations(range(code.cols), k)


# ----------------------------------------------------------------------
# compiled vs interpreted equivalence, every registered code
# ----------------------------------------------------------------------
class TestCompiledEquivalence:
    @pytest.mark.parametrize("family", sorted(CODE_FAMILIES))
    def test_encode_matches_interpreted(self, family):
        code = small_code(family)
        codec = StripeCodec(code, packet_size=32)
        data = random_matrix(code.num_data, 96, seed=1)
        reference = codec.encode_packets([data[i] for i in range(len(data))])
        compiled = codec.encode_into(data)
        for i in range(code.num_parity):
            assert np.array_equal(compiled[i], reference[i]), i

    @pytest.mark.parametrize("family", sorted(CODE_FAMILIES))
    def test_all_failure_patterns_match_interpreted(self, family):
        """Every maximal failure pattern decodes byte-identically."""
        code = small_code(family)
        codec = StripeCodec(code, packet_size=16)
        for combo in itertools.combinations(range(code.cols), code.faults):
            decoder = code.decoder_for(combo)
            known = random_matrix(
                len(decoder.plan.known_positions), 48, seed=sum(combo)
            )
            reference = decoder.plan.schedule.apply(
                [known[i] for i in range(len(known))]
            )
            compiled = codec.decode_into(combo, known)
            for i in range(len(reference)):
                assert np.array_equal(compiled[i], reference[i]), (combo, i)

    @pytest.mark.parametrize("family", sorted(CODE_FAMILIES))
    def test_stripe_decode_roundtrip(self, family):
        """End-to-end: erase faults columns, decode in place, recover."""
        code = small_code(family)
        stripe = code.random_stripe(packet_size=24, seed=5)
        for combo in itertools.combinations(range(code.cols), code.faults):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo


# ----------------------------------------------------------------------
# plan lowering: DCE, liveness, zero rows, tiling
# ----------------------------------------------------------------------
class TestPlanLowering:
    def test_subset_plan_drops_dead_ops(self):
        code = small_code("tip")
        decoder = code.decoder_for((0, 2, 4))
        full = decoder.compiled_plan()
        only = decoder.compiled_plan((2,))
        assert len(only.ops) < len(full.ops)
        assert len(only.outputs) < len(full.outputs)

    def test_subset_plan_matches_full_plan(self):
        code = small_code("tip")
        stripe = code.random_stripe(packet_size=16, seed=7)
        damaged = stripe.copy()
        code.erase_columns(damaged, (0, 2, 4))
        decoder = code.decoder_for((0, 2, 4))
        decoder.decode_columns(damaged, only_cols=(2,))
        assert np.array_equal(damaged[:, 2, :], stripe[:, 2, :])
        # Other failed columns stay erased.
        assert not damaged[:, 0, :].any()
        assert not damaged[:, 4, :].any()

    def test_workspace_slots_are_reused(self):
        """A chain of intermediate bases must share recycled slots."""
        # out0 = in0^in1 (base), out1 = out0^in2 (base), out2 = out1^in3;
        # only out2 needed: out0 and out1 are intermediates whose
        # lifetimes do not overlap beyond handoff.
        matrix = np.array(
            [[1, 1, 0, 0], [1, 1, 1, 0], [1, 1, 1, 1]], dtype=np.uint8
        )
        schedule = smart_schedule(matrix)
        plan = schedule.compile([2])
        assert plan.num_workspace <= 2
        ins = [np.array([a], dtype=np.uint8) for a in (3, 5, 9, 17)]
        out = plan.execute(ins)
        assert out[0, 0] == 3 ^ 5 ^ 9 ^ 17

    def test_zero_rows_are_zero_filled(self):
        schedule = naive_schedule(np.array([[0, 0], [1, 1]], dtype=np.uint8))
        plan = schedule.compile()
        ins = [
            np.full(4, 7, dtype=np.uint8),
            np.full(4, 9, dtype=np.uint8),
        ]
        out = np.full((2, 4), 0xAA, dtype=np.uint8)
        plan.execute_into(ins, out)
        assert not out[0].any()
        assert (out[1] == (7 ^ 9)).all()

    def test_plan_xor_count_matches_schedule(self):
        code = small_code("star")
        schedule = encode_schedule_for(code)
        assert schedule.compile().xor_count == schedule.xor_count

    @pytest.mark.parametrize("tile", [1, 5, 64, 4096, None])
    def test_chunked_equals_unchunked(self, tile):
        """Any tile size produces the same bytes as one full-width pass."""
        code = small_code("triple-star")
        codec = StripeCodec(code, packet_size=32)
        width = 101  # deliberately not a multiple of any tile
        data = random_matrix(code.num_data, width, seed=9)
        unchunked = codec.encode_plan.execute(data, tile_bytes=width)
        chunked = codec.encode_plan.execute(data, tile_bytes=tile)
        assert np.array_equal(chunked, unchunked)

    def test_compile_rejects_bad_needed_output(self):
        schedule = naive_schedule(np.eye(3, dtype=np.uint8))
        with pytest.raises(ValueError, match="needed output"):
            schedule.compile([3])

    def test_plan_survives_pickle(self):
        import pickle

        code = small_code("tip")
        codec = StripeCodec(code, packet_size=16)
        data = random_matrix(code.num_data, 32, seed=3)
        clone = pickle.loads(pickle.dumps(codec.encode_plan))
        assert np.array_equal(clone.execute(data), codec.encode_into(data))

    def test_empty_schedule_plan(self):
        plan = CompiledPlan(XorSchedule(num_inputs=0, num_outputs=0))
        plan.execute_into([], [])  # no-op, no error

    def test_concurrent_decode_uses_private_workspace(self):
        """Threads sharing one cached plan must not share scratch rows.

        Plans are cached per (code, failure set) and the store reuses
        one decoder across stripes, so degraded writes to two different
        stripes (each under its own stripe lock) decode through the
        same CompiledPlan concurrently. A shared workspace arena lets
        one thread overwrite another's partial syndromes, producing a
        silently wrong — but parity-consistent — reconstruction.
        """
        import threading

        code = make_code("tip", 8)
        decoder = code.decoder_for((5,))
        assert decoder.compiled_plan().num_workspace > 0
        rng = np.random.default_rng(7)

        def fresh_stripe():
            stripe = rng.integers(
                0, 256, (code.rows, code.cols, 4096), dtype=np.uint8
            )
            for r in range(code.rows):
                for c in range(code.cols):
                    if (r, c) not in code.element_index:
                        stripe[r, c] = 0
            code.encode(stripe)
            return stripe

        stripes = [fresh_stripe() for _ in range(8)]
        truth = [s.copy() for s in stripes]
        corrupted = []

        def worker(i):
            stripe = stripes[i]
            for _ in range(100):
                stripe[:, 5, :] = 0
                decoder.decode_columns(stripe)
                if not np.array_equal(stripe, truth[i]):
                    corrupted.append(i)
                    return

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not corrupted


# ----------------------------------------------------------------------
# multicore fan-out
# ----------------------------------------------------------------------
class TestParallel:
    @pytest.fixture(scope="class")
    def tip6(self):
        return make_code("tip", 6)

    def test_split_spans_cover_and_align(self):
        spans = split_spans(5 * 4096 + 17, 3)
        assert spans[0][0] == 0 and spans[-1][1] == 5 * 4096 + 17
        for (_, hi), (lo, _) in zip(spans[:-1], spans[1:]):
            assert hi == lo
            assert lo % 4096 == 0

    def test_split_spans_narrow_width_degenerates(self):
        assert split_spans(100, 4) == [(0, 100)]
        assert split_spans(0, 4) == []

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_encode_deterministic(self, tip6, workers):
        codec = StripeCodec(tip6)
        data = random_matrix(tip6.num_data, 4096 * 6, seed=11)
        expected = codec.encode_into(data)
        result = parallel_encode_into(codec, data, workers=workers)
        assert np.array_equal(result, expected), workers

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_decode_deterministic(self, tip6, workers):
        codec = StripeCodec(tip6)
        failed = (1, 3, 5)
        decoder = tip6.decoder_for(failed)
        known = random_matrix(
            len(decoder.plan.known_positions), 4096 * 6, seed=13
        )
        expected = codec.decode_into(failed, known)
        result = parallel_decode_into(codec, failed, known, workers=workers)
        assert np.array_equal(result, expected), workers

    def test_parallel_execute_on_views(self, tip6):
        """Fan-out scatters results back into caller-owned views."""
        codec = StripeCodec(tip6)
        data = random_matrix(tip6.num_data, 4096 * 4, seed=17)
        expected = codec.encode_into(data)
        out = np.zeros((tip6.num_parity, 4096 * 4), dtype=np.uint8)
        parallel_execute(
            codec.encode_plan, list(data), [row for row in out], workers=2
        )
        assert np.array_equal(out, expected)


# ----------------------------------------------------------------------
# caches: encode-schedule memo and decoder LRU
# ----------------------------------------------------------------------
class TestCaches:
    def test_encode_schedule_memoized_across_codecs(self):
        code = small_code("tip")
        first = StripeCodec(code, packet_size=64)
        second = StripeCodec(code, packet_size=128)
        assert first._encode_schedule is second._encode_schedule

    def test_encode_schedule_memo_keyed_by_content(self):
        tip = small_code("tip")
        star = small_code("star")
        assert encode_schedule_for(tip) is not encode_schedule_for(star)

    def test_decoder_cache_lru_eviction(self):
        code = small_code("tip")
        code.decoder_cache_size = 2
        code._decoder_cache.clear()
        d01 = code.decoder_for((0, 1))
        code.decoder_for((1, 2))
        assert code.decoder_for((0, 1)) is d01  # hit refreshes recency
        code.decoder_for((2, 3))  # evicts (1, 2), not (0, 1)
        assert tuple(code._decoder_cache) == ((0, 1), (2, 3))
        assert code.decoder_for((0, 1)) is d01

    def test_decoder_cache_bounded_under_sweep(self):
        code = small_code("tip")
        code.decoder_cache_size = 4
        code._decoder_cache.clear()
        for combo in itertools.combinations(range(code.cols), code.faults):
            code.decoder_for(combo)
        assert len(code._decoder_cache) <= 4

    def test_decoder_cache_size_validated(self):
        from repro.codes.base import ArrayCode, Cell

        with pytest.raises(ValueError, match="decoder_cache_size"):
            ArrayCode(
                "bad",
                2,
                4,
                kinds={(0, 3): Cell.PARITY},
                chains={(0, 3): ((0, 0), (0, 1), (0, 2))},
                faults=1,
                decoder_cache_size=0,
            )


# ----------------------------------------------------------------------
# packet validation (compiled out= path preconditions)
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.fixture(scope="class")
    def tip6(self):
        return make_code("tip", 6)

    def test_non_contiguous_packet_rejected(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        packets = [
            np.zeros(8, dtype=np.uint8) for _ in range(tip6.num_data)
        ]
        packets[2] = np.zeros(16, dtype=np.uint8)[::2]  # strided view
        with pytest.raises(ValueError, match="packet 2 is not C-contiguous"):
            codec.encode_packets(packets)

    def test_non_contiguous_matrix_rejected(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        transposed = np.zeros((64, tip6.num_data), dtype=np.uint8).T
        with pytest.raises(ValueError, match="not C-contiguous"):
            codec.encode_into(transposed)

    def test_wrong_matrix_shape_rejected(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        with pytest.raises(ValueError, match="shape"):
            codec.encode_into(np.zeros((3, 64), dtype=np.uint8))

    def test_wrong_out_width_rejected(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        data = np.zeros((tip6.num_data, 64), dtype=np.uint8)
        out = np.zeros((tip6.num_parity, 32), dtype=np.uint8)
        with pytest.raises(ValueError, match="width"):
            codec.encode_into(data, out)

    def test_engine_name_validated(self, tip6):
        from repro.codec import measure_encode_throughput

        with pytest.raises(ValueError, match="engine"):
            measure_encode_throughput(tip6, data_bytes=1 << 12, engine="jit")

    def test_interpreted_engine_refuses_workers(self, tip6):
        from repro.codec import measure_encode_throughput

        with pytest.raises(ValueError, match="compiled"):
            measure_encode_throughput(
                tip6, data_bytes=1 << 12, engine="interpreted", workers=2
            )


# ----------------------------------------------------------------------
# store integration: batched rebuild + batch_workers
# ----------------------------------------------------------------------
class TestStoreBatchedRebuild:
    CHUNK = 256

    def make_store(self, tmp_path, **kwargs):
        return ArrayStore(
            make_code("tip", 6),
            tmp_path,
            stripes=5,
            chunk_bytes=self.CHUNK,
            **kwargs,
        )

    def fill(self, store, seed=0):
        rng = np.random.default_rng(seed)
        payload = rng.integers(
            0, 256, size=(store.capacity_chunks, self.CHUNK), dtype=np.uint8
        )
        store.write_chunks(0, payload)
        return payload

    @pytest.mark.parametrize("batch", [1, 2, 5, 32])
    def test_rebuild_batch_sizes(self, tmp_path, batch):
        """Batch sizes that divide, exceed and straddle the stripe count."""
        store = self.make_store(tmp_path, rebuild_batch=batch)
        payload = self.fill(store, seed=batch)
        store.fail_disk(0)
        store.fail_disk(2)
        store.fail_disk(5)
        assert store.rebuild() == store.stripes
        assert store.failed == set()
        assert np.array_equal(
            store.read_chunks(0, store.capacity_chunks), payload
        )
        assert store.scrub() == []

    def test_rebuild_with_batch_workers(self, tmp_path):
        store = self.make_store(tmp_path, batch_workers=2, rebuild_batch=5)
        payload = self.fill(store, seed=42)
        store.fail_disk(1)
        store.fail_disk(4)
        assert store.rebuild() == store.stripes
        assert np.array_equal(
            store.read_chunks(0, store.capacity_chunks), payload
        )
        assert store.scrub() == []

    def test_rebuild_io_accounting_unchanged_by_batching(self, tmp_path):
        """Chunk I/O totals are a property of the geometry, not the batch."""
        totals = []
        for batch in (1, 3):
            directory = tmp_path / f"b{batch}"
            store = self.make_store(directory, rebuild_batch=batch)
            self.fill(store, seed=7)
            store.fail_disk(2)
            store.rebuild()
            totals.append(
                (store.last_io.chunks_read, store.last_io.chunks_written)
            )
        assert totals[0] == totals[1]

    def test_batch_loader_matches_single_stripe_loads(self, tmp_path):
        store = self.make_store(tmp_path)
        self.fill(store, seed=9)
        wide = store._load_stripe_batch(1, 3)
        rows, cols = store.code.rows, store.code.cols
        by_stripe = wide.reshape(rows, cols, 3, self.CHUNK)
        for i in range(3):
            assert np.array_equal(
                by_stripe[:, :, i, :], store._load_stripe(1 + i)
            )

    def test_batch_params_validated(self, tmp_path):
        with pytest.raises(ValueError, match="batch_workers"):
            self.make_store(tmp_path / "w", batch_workers=0)
        with pytest.raises(ValueError, match="rebuild_batch"):
            self.make_store(tmp_path / "b", rebuild_batch=0)


# ----------------------------------------------------------------------
# code-level plan caches: planning work survives decoder LRU eviction
# ----------------------------------------------------------------------
class TestPlanCachesSurviveEviction:
    def test_recovery_plan_reused_across_eviction(self):
        code = small_code("tip")
        code.decoder_cache_size = 1
        code._decoder_cache.clear()
        code._recovery_plan_cache.clear()
        plan01 = code.decoder_for((0, 1)).plan
        code.decoder_for((2, 3))  # evicts the (0, 1) Decoder
        assert (0, 1) not in code._decoder_cache
        fresh = code.decoder_for((0, 1))
        assert fresh.plan is plan01  # schedule solve was NOT repeated

    def test_compiled_plan_reused_across_eviction(self):
        code = small_code("tip")
        code.decoder_cache_size = 1
        code._decoder_cache.clear()
        code._compiled_plan_cache.clear()
        compiled01 = code.decoder_for((0, 1)).compiled_plan()
        code.decoder_for((2, 3)).compiled_plan()  # evicts the Decoder
        again = code.decoder_for((0, 1)).compiled_plan()
        assert again is compiled01  # lowering was NOT repeated

    def test_plan_caches_bounded(self):
        code = small_code("tip")
        code.decoder_cache_size = 2
        code._decoder_cache.clear()
        code._recovery_plan_cache.clear()
        code._compiled_plan_cache.clear()
        for combo in itertools.combinations(range(code.cols), 2):
            code.decoder_for(combo).compiled_plan()
        assert len(code._recovery_plan_cache) <= 4 * code.decoder_cache_size
        assert len(code._compiled_plan_cache) <= 4 * code.decoder_cache_size

    def test_decode_correct_after_plan_reuse(self):
        code = small_code("tip")
        code.decoder_cache_size = 1
        code._decoder_cache.clear()
        codec = StripeCodec(code)
        width = 4096 * 2
        data = random_matrix(code.num_data, width, seed=31)
        parity = codec.encode_into(data)
        for failed in ((0, 1), (2, 3), (0, 1)):  # last one reuses plans
            decoder = code.decoder_for(failed)
            known = np.ascontiguousarray([
                (data[code.data_positions.index(pos)]
                 if pos in code.data_positions
                 else parity[code.parity_positions.index(pos)])
                for pos in decoder.plan.known_positions
            ])
            restored = codec.decode_into(failed, known)
            for row, pos in enumerate(decoder.plan.unknown_positions):
                if pos in code.data_positions:
                    want = data[code.data_positions.index(pos)]
                else:
                    want = parity[code.parity_positions.index(pos)]
                assert np.array_equal(restored[row], want), (failed, pos)


# ----------------------------------------------------------------------
# auto fan-out: pool engages only when the span amortizes its overhead
# ----------------------------------------------------------------------
class TestAutoFanout:
    def test_auto_resolves_serial_below_threshold(self, monkeypatch):
        from repro.codec import parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 8)
        par._auto_thresholds[8] = 64 << 20  # pretend overhead is huge
        try:
            assert par.auto_worker_count(1 << 20) == 1
            assert par.auto_worker_count(63 << 20) == 1
        finally:
            par._auto_thresholds.pop(8, None)

    def test_auto_scales_with_width_above_threshold(self, monkeypatch):
        from repro.codec import parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 8)
        par._auto_thresholds[8] = 4 << 20
        try:
            assert par.auto_worker_count(8 << 20) == 2
            assert par.auto_worker_count(64 << 20) == 8  # capped at cpus
        finally:
            par._auto_thresholds.pop(8, None)

    def test_single_cpu_host_never_fans_out(self, monkeypatch):
        from repro.codec import parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 1)
        assert par.auto_worker_count(1 << 30) == 1

    def test_auto_workers_byte_identical_to_serial(self):
        code = small_code("tip")
        codec = StripeCodec(code)
        data = random_matrix(code.num_data, 4096 * 4, seed=37)
        expected = codec.encode_into(data)
        auto = parallel_encode_into(codec, data, workers=None)
        assert np.array_equal(auto, expected)

    def test_segment_pool_reuses_segments_across_calls(self):
        from repro.codec import parallel as par

        code = small_code("tip")
        codec = StripeCodec(code)
        data = random_matrix(code.num_data, 4096 * 4, seed=41)
        expected = codec.encode_into(data)
        first = parallel_encode_into(codec, data, workers=2)
        names_after_first = {
            role: shm.name for role, shm in par._segments._segments.items()
        }
        second = parallel_encode_into(codec, data, workers=2)
        names_after_second = {
            role: shm.name for role, shm in par._segments._segments.items()
        }
        assert names_after_first == names_after_second  # reused, not remade
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)


# ----------------------------------------------------------------------
# fused two-stage decode plans: property sweep over every family,
# every <=faults failure pattern, adversarial widths
# ----------------------------------------------------------------------

#: Widths chosen to break the executor's fast paths: single byte, below
#: a u64 word, a prime that is neither 8- nor 64-divisible, exactly one
#: explicit 256-byte tile, and one byte past the tile boundary.
ADVERSARIAL_WIDTHS = (1, 7, 101, 256, 257)

#: Wide enough to engage the uint64 fast path, plus a ragged 7-byte
#: tail that must fall back to the uint8 pass.
WIDE_WIDTH = _WIDE_WORD_MIN + 7


class TestFusedDecodeSweep:
    @pytest.mark.parametrize("family", sorted(CODE_FAMILIES))
    def test_every_pattern_every_width_matches_interpreted(self, family):
        """The fused two-stage compiled plan is byte-identical to the
        dense ``XorSchedule.apply`` oracle for every registered family,
        every failure pattern up to ``faults`` columns, at widths that
        break tile and word alignment."""
        code = small_code(family)
        for combo in sub_maximal_patterns(code):
            decoder = code.decoder_for(combo)
            plan = decoder.compiled_plan()
            num_known = len(decoder.plan.known_positions)
            for width in ADVERSARIAL_WIDTHS:
                known = random_matrix(
                    num_known, width, seed=width + 31 * sum(combo)
                )
                reference = decoder.plan.schedule.apply(
                    [known[i] for i in range(num_known)]
                )
                out = np.full(
                    (len(decoder.plan.unknown_positions), width),
                    0xCC,
                    dtype=np.uint8,
                )
                plan.execute_into(known, out, tile_bytes=256)
                for i, row in enumerate(reference):
                    assert np.array_equal(out[i], row), (combo, width, i)

    @pytest.mark.parametrize("family", sorted(CODE_FAMILIES))
    def test_wide_word_path_matches_interpreted(self, family):
        """At widths past the uint64 threshold (with a ragged tail) the
        wide-word kernels still match the oracle bit for bit."""
        code = small_code(family)
        combo = next(
            itertools.combinations(range(code.cols), code.faults)
        )
        decoder = code.decoder_for(combo)
        num_known = len(decoder.plan.known_positions)
        known = random_matrix(num_known, WIDE_WIDTH, seed=43)
        reference = decoder.plan.schedule.apply(
            [known[i] for i in range(num_known)]
        )
        compiled = decoder.compiled_plan().execute(known)
        for i, row in enumerate(reference):
            assert np.array_equal(compiled[i], row), i

    def test_misaligned_rows_fall_back_byte_identically(self):
        """Rows whose base address is not 8-byte aligned take the uint8
        fallback and still produce the same bytes as aligned buffers."""
        code = small_code("tip")
        combo = (0, 1, 2)
        decoder = code.decoder_for(combo)
        plan = decoder.compiled_plan()
        num_known = len(decoder.plan.known_positions)
        width = WIDE_WIDTH - 7  # keep the wide path eligible by width
        aligned = random_matrix(num_known, width, seed=47)
        # Carve contiguous rows at odd offsets out of one flat buffer.
        backing = np.empty(num_known * width + 1, dtype=np.uint8)
        rows = [
            backing[1 + i * width : 1 + (i + 1) * width]
            for i in range(num_known)
        ]
        for i in range(num_known):
            rows[i][...] = aligned[i]
        assert any(row.ctypes.data % 8 for row in rows)
        expected = plan.execute(aligned)
        got = plan.execute(rows)
        assert np.array_equal(got, expected)

    def test_fused_plan_survives_pickle(self):
        """Fused decode plans (runs included) round-trip through pickle
        byte-identically — workers receive plans this way."""
        code = small_code("tip")
        combo = (1, 3, 5)
        decoder = code.decoder_for(combo)
        plan = decoder.compiled_plan()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.runs == plan.runs
        known = random_matrix(
            len(decoder.plan.known_positions), 4096, seed=53
        )
        assert np.array_equal(clone.execute(known), plan.execute(known))

    def test_fused_plan_executes_fewer_xors_than_dense(self):
        """The two-stage factorization is the point: for tip the fused
        plan must execute strictly fewer XORs than the dense schedule,
        while ``xor_count`` keeps reporting the paper's dense metric."""
        code = make_code("tip", 12)
        decoder = code.decoder_for((1, 2, 8))
        assert decoder.fused_xor_count < decoder.xor_count
        assert decoder.xor_count == decoder.plan.schedule.xor_count


# ----------------------------------------------------------------------
# run fusion: op accounting and the memory-pass model
# ----------------------------------------------------------------------
class TestRunFusion:
    def encode_plan(self):
        return StripeCodec(small_code("tip"), packet_size=32).encode_plan

    def test_runs_account_for_every_op(self):
        """Each lowered op is exactly one run head or one run source."""
        plan = self.encode_plan()
        accounted = sum(
            (head is not None) + len(sources)
            for _dest, head, sources in plan.runs
        )
        assert accounted == len(plan.ops)

    def test_fusion_saves_memory_passes(self):
        """A fused k-source accumulate reads k sources + writes once;
        the unfused op list would pay ~2 passes per op."""
        plan = self.encode_plan()
        assert plan.memory_passes < 2 * len(plan.ops)
        assert plan.memory_passes >= len(plan.ops)  # every source is read

    def test_decode_runs_fuse_across_stages(self):
        """The fused two-stage plan still lowers into multi-source runs
        (syndromes feed back-substitution without a barrier)."""
        code = small_code("tip")
        plan = code.decoder_for((0, 1, 2)).compiled_plan()
        assert any(len(sources) > 1 for _d, _h, sources in plan.runs)


# ----------------------------------------------------------------------
# tile geometry: the 64-byte alignment rule
# ----------------------------------------------------------------------
class TestTileRules:
    def test_round_tile_bytes_rounds_up_to_64(self):
        assert round_tile_bytes(1) == TILE_ALIGN
        assert round_tile_bytes(TILE_ALIGN) == TILE_ALIGN
        assert round_tile_bytes(TILE_ALIGN + 1) == 2 * TILE_ALIGN
        assert round_tile_bytes(4096) == 4096

    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_round_tile_bytes_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="tile_bytes"):
            round_tile_bytes(bad)

    def test_default_tile_is_64_byte_aligned(self):
        plan = StripeCodec(small_code("tip"), packet_size=32).encode_plan
        for width in (1, 63, 64, 4097, 1 << 20, 64 << 20):
            tile = plan.default_tile(width)
            assert tile % TILE_ALIGN == 0, width
            assert TILE_ALIGN <= tile <= _TILE_MAX, width

    def test_default_tile_never_exceeds_rounded_width(self):
        plan = StripeCodec(small_code("tip"), packet_size=32).encode_plan
        for width in (1, 100, 5000):
            rounded = -(-width // TILE_ALIGN) * TILE_ALIGN
            assert plan.default_tile(width) <= rounded

    def test_default_tile_tracks_host_cache(self):
        """A bigger measured cache yields a bigger (still aligned) tile."""
        plan = StripeCodec(small_code("tip"), packet_size=32).encode_plan
        width = 64 << 20

        def with_cache(nbytes):
            set_host_profile(
                HostProfile(
                    memcpy_gib_s=10.0,
                    xor_gib_s=10.0,
                    xor_cached_gib_s=20.0,
                    dispatch_overhead_s=1e-7,
                    effective_cache_bytes=nbytes,
                )
            )
            try:
                return plan.default_tile(width)
            finally:
                set_host_profile(None)

        small, big = with_cache(256 << 10), with_cache(8 << 20)
        assert small <= big
        assert small % TILE_ALIGN == 0 and big % TILE_ALIGN == 0
        assert big <= _TILE_MAX

    def test_explicit_tile_is_rounded_not_rejected(self):
        """An explicit odd tile executes on its 64-byte rounding and
        matches the untiled result."""
        plan = StripeCodec(small_code("tip"), packet_size=32).encode_plan
        data = random_matrix(plan.num_inputs, 1000, seed=59)
        untiled = plan.execute(data, tile_bytes=1024)
        for odd in (1, 100, 257):
            assert np.array_equal(
                plan.execute(data, tile_bytes=odd), untiled
            ), odd


# ----------------------------------------------------------------------
# engine strings pin kernels (what the throughput measurers time)
# ----------------------------------------------------------------------
class TestKernelPinning:
    def test_engine_strings_pin_kernels(self):
        assert kernel_name("interpreted") == "XorSchedule.apply"
        assert kernel_name("compiled") == "CompiledPlan.execute_into"
        assert kernel_name("compiled", workers=1) == kernel_name("compiled")
        assert kernel_name("compiled", workers=2) == (
            "parallel_execute[zero-copy]"
        )
        assert kernel_name("compiled", workers=4) == (
            "parallel_execute[zero-copy]"
        )

    def test_kernel_name_validates_like_the_measurers(self):
        with pytest.raises(ValueError, match="engine"):
            kernel_name("jit")
        with pytest.raises(ValueError, match="compiled"):
            kernel_name("interpreted", workers=2)
        with pytest.raises(ValueError, match="workers"):
            kernel_name("compiled", workers=0)

    def test_measured_decode_matches_decode_into_plan(self):
        """The compiled decode measurement times the very plan objects
        ``StripeCodec.decode_into`` executes (the fused two-stage ones,
        via the code-level compiled-plan cache)."""
        from repro.codec import measure_decode_throughput

        code = small_code("tip")
        code._compiled_plan_cache.clear()
        result = measure_decode_throughput(
            code, data_bytes=1 << 12, packet_size=64, patterns=2
        )
        assert result.gib_per_second > 0
        assert code._compiled_plan_cache  # warmed by the measurement
        for (combo, _key), plan in list(code._compiled_plan_cache.items()):
            assert plan is code.decoder_for(combo).compiled_plan()

    def test_xors_metric_identical_across_engines(self):
        """``xors_per_element`` reports the paper's dense-schedule count
        no matter which kernel executed."""
        from repro.codec import measure_decode_throughput

        code = small_code("tip")
        kwargs = dict(data_bytes=1 << 12, packet_size=64, patterns=2)
        interpreted = measure_decode_throughput(
            code, engine="interpreted", **kwargs
        )
        compiled = measure_decode_throughput(code, engine="compiled", **kwargs)
        assert interpreted.xors_per_element == compiled.xors_per_element


# ----------------------------------------------------------------------
# zero-copy fan-out: the pooled allocator and address-range detection
# ----------------------------------------------------------------------
class TestZeroCopyPool:
    def test_shared_empty_rows_are_located(self):
        from repro.codec import parallel as par

        matrix = shared_empty((4, 4096), role="test-locate")
        hit = par._segments.locate([matrix[i] for i in range(4)], 4096)
        assert hit is not None
        name, offsets = hit
        assert name == par._segments._segments["user:test-locate"].name
        assert offsets == [i * 4096 for i in range(4)]

    def test_private_arrays_are_not_located(self):
        from repro.codec import parallel as par

        shared_empty((1, 64), role="test-locate-miss")  # pool is non-empty
        private = np.zeros((2, 512), dtype=np.uint8)
        assert par._segments.locate([private[0], private[1]], 512) is None

    def test_shared_empty_validates_shape(self):
        with pytest.raises(ValueError):
            shared_empty((-1, 64))
        with pytest.raises(ValueError):
            shared_empty((2, -64))

    def test_grow_retires_old_segment_without_unmapping(self):
        """Growing a role keeps prior ``shared_empty`` views readable:
        the replaced segment is unlinked but its unmap is deferred."""
        from repro.codec import parallel as par

        old = shared_empty((1, 1024), role="test-grow")
        old.fill(7)
        retired_before = len(par._segments._retired)
        grown = shared_empty((1, 1 << 20), role="test-grow")
        assert len(par._segments._retired) == retired_before + 1
        assert (old == 7).all()  # old view still backed by live pages
        grown.fill(9)
        assert (old == 7).all()  # distinct memory

    def test_pool_owned_buffers_skip_gather_scatter(self):
        """Fan-out into pool-owned rows writes results in place — the
        caller's ``shared_empty`` matrix holds the output with no
        scatter copy, byte-identical to the serial engine."""
        code = small_code("tip")
        codec = StripeCodec(code)
        width = 4096 * 4
        data = shared_empty((code.num_data, width), role="test-zc-in")
        data[...] = random_matrix(code.num_data, width, seed=61)
        out = shared_empty((code.num_parity, width), role="test-zc-out")
        out.fill(0)
        expected = codec.encode_into(np.ascontiguousarray(data))
        parallel_execute(
            codec.encode_plan,
            [data[i] for i in range(code.num_data)],
            [out[i] for i in range(code.num_parity)],
            workers=2,
        )
        assert np.array_equal(out, expected)

    def test_in_and_out_rows_in_same_segment(self):
        """Workers attach one segment when inputs and outputs share it."""
        code = small_code("tip")
        codec = StripeCodec(code)
        width = 4096 * 2
        rows = code.num_data + code.num_parity
        block = shared_empty((rows, width), role="test-zc-inout")
        block[: code.num_data] = random_matrix(
            code.num_data, width, seed=67
        )
        block[code.num_data :] = 0
        expected = codec.encode_into(
            np.ascontiguousarray(block[: code.num_data])
        )
        parallel_execute(
            codec.encode_plan,
            [block[i] for i in range(code.num_data)],
            [block[code.num_data + i] for i in range(code.num_parity)],
            workers=2,
        )
        assert np.array_equal(block[code.num_data :], expected)
