"""The volume layer: mapping math, routing, persistence, the close
audit, and the concurrent VolumeService front-end."""

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.service import VolumeService
from repro.store import ArrayStore, IoCounters
from repro.codes import make_code
from repro.volume import ShardSpec, VolumeManager, VolumeMapping


def test_import_order_does_not_matter():
    """``repro.volume`` imports the service locks and the service
    package imports the volume manager back; each side must load first
    in a fresh interpreter (the in-process suite can't see this)."""
    for first in ("repro.volume", "repro.service"):
        script = (
            f"import {first}\n"
            "from repro.service import VolumeService\n"
            "from repro.volume import VolumeManager\n"
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, timeout=60
        )


class TestVolumeMapping:
    def test_round_robin_over_equal_shards(self):
        mapping = VolumeMapping([4096, 4096], extent_bytes=1024)
        assert mapping.total_extents == 8
        assert [mapping.locate(e) for e in range(4)] == [
            (0, 0), (1, 0), (0, 1024), (1, 1024),
        ]

    def test_heterogeneous_shards_keep_dealing_to_the_big_one(self):
        mapping = VolumeMapping([1024, 3072], extent_bytes=1024)
        owners = [mapping.locate(e)[0] for e in range(mapping.total_extents)]
        assert owners == [0, 1, 1, 1]

    def test_partial_extents_are_unused(self):
        mapping = VolumeMapping([2500], extent_bytes=1024)
        assert mapping.total_extents == 2
        assert mapping.volume_bytes == 2048

    def test_rejects_shard_below_one_extent(self):
        with pytest.raises(ValueError, match="less than one"):
            VolumeMapping([512, 4096], extent_bytes=1024)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            VolumeMapping([], extent_bytes=1024)
        with pytest.raises(ValueError):
            VolumeMapping([4096], extent_bytes=0)

    def test_byte_runs_split_at_extent_boundaries(self):
        mapping = VolumeMapping([4096, 4096], extent_bytes=1024)
        runs = mapping.byte_runs(1000, 100)  # spans extents 0 and 1
        assert [(r.extent, r.shard, r.nbytes) for r in runs] == [
            (0, 0, 24), (1, 1, 76),
        ]
        assert runs[0].shard_offset == 1000
        assert runs[1].shard_offset == 0

    def test_byte_runs_never_merge_adjacent_extents(self):
        # Extents 0 and 2 are both on shard 0 and byte-adjacent there;
        # the runs must still split (the extent is the routing atom).
        mapping = VolumeMapping([4096, 4096], extent_bytes=1024)
        runs = mapping.byte_runs(0, 4096)
        assert len(runs) == 4

    def test_runs_cover_exactly(self):
        mapping = VolumeMapping([8192, 4096, 4096], extent_bytes=512)
        runs = mapping.byte_runs(777, 9000)
        assert sum(r.nbytes for r in runs) == 9000
        assert runs[0].volume_offset == 777

    def test_out_of_range_rejected(self):
        mapping = VolumeMapping([4096], extent_bytes=1024)
        with pytest.raises(ValueError):
            mapping.byte_runs(0, mapping.volume_bytes + 1)
        with pytest.raises(ValueError):
            mapping.byte_runs(-1, 10)


def _specs():
    return [
        ShardSpec("tip", 5, stripes=6, chunk_bytes=512),
        ShardSpec("tip", 7, stripes=4, chunk_bytes=512),
    ]


def _create(tmp_path, name="vol", extent_bytes=2048, specs=None):
    return VolumeManager.create(
        tmp_path / name, specs or _specs(), extent_bytes=extent_bytes
    )


class TestVolumeManager:
    def test_create_open_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        with _create(tmp_path) as vol:
            data = rng.integers(0, 256, vol.volume_bytes, dtype=np.uint8)
            vol.write_bytes(0, data)
            assert np.array_equal(vol.read_bytes(0, vol.volume_bytes), data)
        with VolumeManager.open(tmp_path / "vol") as vol:
            assert np.array_equal(vol.read_bytes(0, vol.volume_bytes), data)

    def test_capacity_is_sum_of_whole_extents(self, tmp_path):
        with _create(tmp_path) as vol:
            expected = sum(
                (spec.capacity_bytes() // 2048) * 2048 for spec in _specs()
            )
            assert vol.volume_bytes == expected

    def test_single_shard_volume_equals_bare_store(self, tmp_path):
        """With one shard the extent layer is the identity map: the
        volume must produce byte-identical shard content and identical
        chunk I/O counters to driving the ArrayStore directly."""
        spec = ShardSpec("tip", 5, stripes=6, chunk_bytes=512)
        bare = ArrayStore(
            make_code("tip", 5), tmp_path / "bare",
            stripes=6, chunk_bytes=512,
        )
        vol = VolumeManager.create(
            tmp_path / "vol", [spec],
            extent_bytes=bare.capacity_bytes,  # one extent: pure identity
        )
        rng = np.random.default_rng(11)
        for _ in range(30):
            length = int(rng.integers(1, 2000))
            offset = int(rng.integers(0, vol.volume_bytes - length))
            payload = rng.integers(0, 256, length, dtype=np.uint8)
            bare.write_bytes(offset, payload)
            vol.write_bytes(offset, payload)
        assert np.array_equal(
            bare.read_bytes(0, vol.volume_bytes),
            vol.read_bytes(0, vol.volume_bytes),
        )
        assert vol.io == bare.io
        bare.close()
        vol.close()

    def test_multi_shard_matches_shadow_buffer(self, tmp_path):
        rng = np.random.default_rng(5)
        with _create(tmp_path) as vol:
            shadow = np.zeros(vol.volume_bytes, dtype=np.uint8)
            vol.write_bytes(0, shadow)  # defined baseline
            for _ in range(60):
                length = int(rng.integers(1, 5000))
                offset = int(rng.integers(0, vol.volume_bytes - length))
                payload = rng.integers(0, 256, length, dtype=np.uint8)
                vol.write_bytes(offset, payload)
                shadow[offset : offset + length] = payload
                if rng.random() < 0.3:
                    probe_len = int(rng.integers(1, 4000))
                    probe = int(
                        rng.integers(0, vol.volume_bytes - probe_len)
                    )
                    assert np.array_equal(
                        vol.read_bytes(probe, probe_len),
                        shadow[probe : probe + probe_len],
                    )
            assert np.array_equal(
                vol.read_bytes(0, vol.volume_bytes), shadow
            )
            assert vol.scrub() == {}

    def test_out_of_range_rejected(self, tmp_path):
        with _create(tmp_path) as vol:
            with pytest.raises(ValueError):
                vol.read_bytes(vol.volume_bytes, 1)
            with pytest.raises(ValueError):
                vol.write_bytes(0, b"")

    def test_create_refuses_existing_volume(self, tmp_path):
        _create(tmp_path).close()
        with pytest.raises(ValueError, match="already holds"):
            _create(tmp_path)

    def test_open_refuses_non_volume(self, tmp_path):
        with pytest.raises(ValueError, match="no volume"):
            VolumeManager.open(tmp_path)

    def test_status_reports_shape(self, tmp_path):
        with _create(tmp_path) as vol:
            status = vol.status()
            assert status.volume_bytes == vol.volume_bytes
            assert [s["family"] for s in status.shards] == ["tip", "tip"]
            assert not status.restripe_active
            assert status.failed_disks == {}

    def test_io_merges_shards(self, tmp_path):
        with _create(tmp_path) as vol:
            vol.write_bytes(0, b"\x77" * vol.volume_bytes)
            assert vol.io == IoCounters.merged(s.io for s in vol.shards)
            assert vol.io.chunks_written > 0


class TestCloseAudit:
    """S2: closing a volume flushes every shard's cache exactly once
    and asserts the shared journal retired every record."""

    def test_close_flushes_each_cached_shard_exactly_once(self, tmp_path):
        specs = [
            ShardSpec("tip", 5, stripes=6, chunk_bytes=512, cache_stripes=4),
            ShardSpec("tip", 7, stripes=4, chunk_bytes=512, cache_stripes=4),
        ]
        vol = _create(tmp_path, specs=specs)
        vol.write_bytes(0, b"\x3c" * vol.volume_bytes)
        flushes = {}
        for uid, store in enumerate(vol.shards):
            assert store.cache is not None
            original = store.cache.flush

            def counted(uid=uid, original=original):
                flushes[uid] = flushes.get(uid, 0) + 1
                return original()

            store.cache.flush = counted
        vol.close()
        assert flushes == {0: 1, 1: 1}
        # Reopen: the flush actually persisted everything.
        with VolumeManager.open(tmp_path / "vol") as reopened:
            assert bytes(reopened.read_bytes(0, 64)) == b"\x3c" * 64

    def test_close_is_idempotent(self, tmp_path):
        vol = _create(tmp_path)
        vol.close()
        vol.close()  # second close must be a no-op, not a double audit

    def test_orphaned_journal_records_fail_the_audit(self, tmp_path):
        vol = _create(tmp_path)
        # Seal an intent the write path never commits — the signature
        # of a write-path bug the audit exists to catch.
        from repro.store import JournalRecord

        vol.journal.log(
            JournalRecord(shard=0, disk=1, offset=0, payload=b"orphan")
        )
        vol.journal.seal(0)
        with pytest.raises(RuntimeError, match="orphaned journal"):
            vol.close()

    def test_clean_close_leaves_empty_journal_file(self, tmp_path):
        vol = _create(tmp_path)
        vol.write_bytes(0, b"\x99" * 4096)
        vol.close()
        assert (tmp_path / "vol" / "intent.journal").stat().st_size == 0


class TestVolumeService:
    def test_concurrent_disjoint_writers_match_shadow(self, tmp_path):
        vol = _create(tmp_path)
        service = VolumeService(vol, workers=4, per_shard_inflight=2)
        shadow = np.zeros(vol.volume_bytes, dtype=np.uint8)
        vol.write_bytes(0, shadow)
        # Four disjoint regions, one writer thread each: the final
        # image is deterministic whatever the interleaving.
        quarter = vol.volume_bytes // 4
        rng = np.random.default_rng(13)
        payloads = {}
        for worker in range(4):
            base = worker * quarter
            # Non-overlapping slots: every future is independent, so
            # the final image is order-free.
            payloads[worker] = [
                (
                    base + slot * (quarter // 10),
                    rng.integers(0, 256, 700, dtype=np.uint8),
                )
                for slot in range(10)
            ]
        futures = []
        for worker, ops in payloads.items():
            for offset, payload in ops:
                futures.append(service.submit_write(offset, payload))
        for future in futures:
            future.result()
        for ops in payloads.values():
            for offset, payload in ops:
                shadow[offset : offset + payload.size] = payload
        assert np.array_equal(
            np.frombuffer(
                service.read(0, vol.volume_bytes), dtype=np.uint8
            ),
            shadow,
        )
        assert service.stats.writes == 40
        assert service.stats.reads == 1
        assert len(service.stats.latencies_ms) == 41
        service.close()

    def test_admission_bounds_per_shard_concurrency(self, tmp_path):
        vol = _create(tmp_path)
        service = VolumeService(vol, workers=8, per_shard_inflight=2)
        inflight, peak = [0], [0]
        gate = threading.Lock()
        original = vol.read_bytes

        def tracked(offset, length):
            with gate:
                inflight[0] += 1
                peak[0] = max(peak[0], inflight[0])
            try:
                return original(offset, length)
            finally:
                with gate:
                    inflight[0] -= 1

        vol.read_bytes = tracked
        # All requests hit extent 0 (shard 0): admission, not the
        # extent lock, is what bounds how many enter the volume at once.
        futures = [service.submit_read(0, 64) for _ in range(16)]
        for future in futures:
            future.result()
        assert peak[0] <= 2
        service.close()

    def test_service_close_closes_volume(self, tmp_path):
        vol = _create(tmp_path)
        service = VolumeService(vol)
        service.write(0, b"\x44" * 128)
        service.close()
        with pytest.raises(ValueError):
            VolumeManager.create(tmp_path / "vol", _specs())  # still there
        with VolumeManager.open(tmp_path / "vol") as reopened:
            assert bytes(reopened.read_bytes(0, 128)) == b"\x44" * 128
