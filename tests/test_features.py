"""Tests for the Table II feature derivation."""

import pytest

from repro.analysis import code_features, feature_table
from repro.codes import make_code


@pytest.fixture(scope="module")
def features_by_family():
    codes = [
        make_code(fam, 8)
        for fam in ("tip", "star", "triple-star", "cauchy-rs", "hdd1")
    ]
    return {f.name.split("-n")[0]: f for f in feature_table(codes, seed=1)}


def test_tip_row_matches_table2(features_by_family):
    tip = next(v for k, v in features_by_family.items() if k.startswith("tip"))
    assert tip.update_complexity == "optimal"
    assert tip.storage_label == "optimal"
    assert tip.decoding_label == "low"
    assert tip.mds


def test_baselines_update_complexity_not_optimal(features_by_family):
    for key, row in features_by_family.items():
        if key.startswith("tip"):
            continue
        assert row.update_complexity in ("medium", "high"), key


def test_hdd1_update_complexity_high(features_by_family):
    hdd1 = next(v for k, v in features_by_family.items() if "hdd1" in k)
    assert hdd1.update_complexity == "high"


def test_all_evaluated_codes_storage_optimal(features_by_family):
    """Table II: every MDS code has optimal storage efficiency."""
    for row in features_by_family.values():
        assert row.storage_label == "optimal"
        assert row.mds


def test_storage_efficiency_value():
    row = code_features(make_code("tip", 8), decode_samples=5)
    assert row.storage_efficiency == pytest.approx(5 / 8)
