"""Tests for encoding/decoding XOR complexity (Figs. 14b, 15b)."""

import pytest

from repro.analysis.xor_cost import (
    decoding_xor_stats,
    encoding_xor_per_element,
    encoding_xor_total,
    tip_encoding_bound,
)
from repro.codes import make_code
from repro.codes.tip import TipCode


class TestEncoding:
    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_tip_attains_lower_bound(self, p):
        assert encoding_xor_per_element(TipCode(p)) == pytest.approx(
            tip_encoding_bound(p)
        )

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            tip_encoding_bound(2)

    def test_total_counts_chain_sizes(self):
        code = TipCode(5)
        expected = sum(len(m) - 1 for m in code.chains.values())
        assert encoding_xor_total(code) == expected

    def test_tip_has_lowest_encoding_complexity(self):
        """Fig. 14b's ordering: TIP lowest at every evaluated size."""
        for n in (6, 8, 12):
            tip = encoding_xor_per_element(make_code("tip", n))
            for family in ("star", "triple-star", "cauchy-rs", "hdd1"):
                assert tip < encoding_xor_per_element(make_code(family, n))


class TestDecoding:
    def test_stats_shape(self):
        stats = decoding_xor_stats(make_code("tip", 6), samples=10, seed=1)
        assert stats.patterns == 10
        assert stats.mean_xors_per_data_element > 0
        assert (
            stats.worst_xors_per_data_element
            >= stats.mean_xors_per_data_element
        )

    def test_enumerates_when_few_patterns(self):
        code = make_code("tip", 6)  # C(6,3) = 20 patterns
        stats = decoding_xor_stats(code, samples=100)
        assert stats.patterns == 20

    def test_fewer_failures_cost_less(self):
        code = make_code("tip", 8)
        triple = decoding_xor_stats(code, failures=3, samples=15, seed=2)
        single = decoding_xor_stats(code, failures=1, samples=15, seed=2)
        assert (
            single.mean_xors_per_data_element
            < triple.mean_xors_per_data_element
        )

    def test_iterative_never_worse(self):
        for family in ("tip", "star"):
            code = make_code(family, 8)
            plain = decoding_xor_stats(
                code, samples=12, seed=3, iterative=False
            )
            iterative = decoding_xor_stats(
                code, samples=12, seed=3, iterative=True
            )
            assert (
                iterative.mean_xors_per_data_element
                <= plain.mean_xors_per_data_element + 1e-9
            )

    def test_failure_count_validation(self):
        code = make_code("tip", 6)
        with pytest.raises(ValueError):
            decoding_xor_stats(code, failures=0)
        with pytest.raises(ValueError):
            decoding_xor_stats(code, failures=4)

    def test_tip_decoding_among_cheapest(self):
        """Fig. 15b: TIP's recovery XOR count beats the chained/adjuster
        baselines (Cauchy-RS with its tiny word size is the one close
        competitor, as in the paper)."""
        for n in (6, 8):
            tip = decoding_xor_stats(
                make_code("tip", n), samples=20, seed=4
            ).mean_xors_per_data_element
            for family in ("star", "triple-star", "hdd1"):
                other = decoding_xor_stats(
                    make_code(family, n), samples=20, seed=4
                ).mean_xors_per_data_element
                assert tip < other * 1.35
