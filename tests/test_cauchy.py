"""Tests for Cauchy Reed-Solomon bit-matrix codes."""

import itertools

import numpy as np
import pytest

from repro.codes.cauchy import CauchyRSCode, make_cauchy_rs, min_word_size


def test_min_word_size():
    assert min_word_size(2) == 1
    assert min_word_size(4) == 2
    assert min_word_size(5) == 3
    assert min_word_size(8) == 3
    assert min_word_size(9) == 4
    assert min_word_size(16) == 4
    assert min_word_size(17) == 5


class TestStructure:
    def test_shape(self):
        code = CauchyRSCode(8, m=3)
        assert code.cols == 8
        assert code.rows == code.w == 3
        assert code.k == 5
        assert code.num_parity == 3 * 3

    def test_word_size_override(self):
        code = CauchyRSCode(6, m=3, w=4)
        assert code.rows == 4

    def test_too_small_word_size(self):
        with pytest.raises(ValueError):
            CauchyRSCode(9, m=3, w=3)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            CauchyRSCode(4, m=4)
        with pytest.raises(ValueError):
            CauchyRSCode(4, m=0)

    def test_parities_depend_only_on_data(self):
        code = CauchyRSCode(6, m=3)
        for members in code.chains.values():
            for row, col in members:
                assert col < code.k


class TestBehaviour:
    @pytest.mark.parametrize("n,m", [(5, 2), (6, 3), (8, 3)])
    def test_mds(self, n, m):
        assert CauchyRSCode(n, m=m).is_mds()

    @pytest.mark.parametrize("n", [6, 8])
    def test_decode_all_triples(self, n):
        code = make_cauchy_rs(n)
        stripe = code.random_stripe(packet_size=4, seed=n)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_optimization_reduces_chain_weight(self):
        """The [32] row scaling must not increase total chain length."""
        plain = CauchyRSCode(8, m=3, optimize=False)
        tuned = CauchyRSCode(8, m=3, optimize=True)
        def weight(code):
            return sum(len(m) for m in code.chains.values())

        assert weight(tuned) <= weight(plain)
        assert tuned.is_mds()

    def test_any_size_supported(self):
        for n in (4, 5, 7, 9, 11, 13):
            code = make_cauchy_rs(n)
            assert code.cols == n

    def test_update_cost_above_tip_optimum(self):
        """Dense bit-matrix rows: single writes touch > 3 parities on
        average (the paper's Cauchy-RS critique)."""
        from repro.analysis import single_write_cost

        code = make_cauchy_rs(12)
        assert single_write_cost(code) > 4.0
