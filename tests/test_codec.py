"""Tests for the bulk packet codec (Figs. 14a/15a machinery)."""

import numpy as np
import pytest

from repro.codec import (
    StripeCodec,
    measure_decode_throughput,
    measure_encode_throughput,
)
from repro.codes import make_code


@pytest.fixture(scope="module")
def tip6():
    return make_code("tip", 6)


class TestStripeCodec:
    def test_encode_matches_reference_encoder(self, tip6):
        codec = StripeCodec(tip6, packet_size=32)
        rng = np.random.default_rng(0)
        data = [
            rng.integers(0, 256, size=32, dtype=np.uint8)
            for _ in range(tip6.num_data)
        ]
        parities = codec.encode_packets(data)
        stripe = tip6.make_stripe(np.stack(data))
        for pos, packet in zip(tip6.parity_positions, parities):
            assert np.array_equal(stripe[pos[0], pos[1]], packet), pos

    def test_encode_wrong_packet_count(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        with pytest.raises(ValueError):
            codec.encode_packets([np.zeros(8, dtype=np.uint8)])

    def test_decode_packets_recover_failed_columns(self, tip6):
        codec = StripeCodec(tip6, packet_size=16)
        stripe = tip6.random_stripe(packet_size=16, seed=2)
        failed = (0, 2, 4)
        decoder = tip6.decoder_for(failed)
        known = [stripe[r, c] for r, c in decoder.plan.known_positions]
        recovered = codec.decode_packets(failed, known)
        for pos, packet in zip(decoder.plan.unknown_positions, recovered):
            assert np.array_equal(stripe[pos[0], pos[1]], packet)

    def test_scheduled_encode_xors_not_above_naive(self, tip6):
        codec = StripeCodec(tip6)
        naive = sum(len(m) - 1 for m in tip6.expanded_chains.values())
        assert codec.encode_xors <= naive

    def test_packet_size_validation(self, tip6):
        with pytest.raises(ValueError):
            StripeCodec(tip6, packet_size=0)

    def test_encode_rejects_mismatched_packet_shapes(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        packets = [np.zeros(8, dtype=np.uint8) for _ in range(tip6.num_data)]
        packets[3] = np.zeros(9, dtype=np.uint8)
        with pytest.raises(ValueError, match="packet 3 has shape"):
            codec.encode_packets(packets)

    def test_encode_rejects_wrong_dtype(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        packets = [np.zeros(8, dtype=np.uint8) for _ in range(tip6.num_data)]
        packets[0] = np.zeros(8, dtype=np.uint16)
        with pytest.raises(ValueError, match="dtype uint8"):
            codec.encode_packets(packets)

    def test_encode_rejects_non_array(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        packets = [np.zeros(8, dtype=np.uint8) for _ in range(tip6.num_data)]
        packets[1] = list(range(8))
        with pytest.raises(ValueError, match="packet 1 must be a numpy"):
            codec.encode_packets(packets)

    def test_decode_rejects_wrong_survivor_count(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        with pytest.raises(ValueError, match="survivor packets"):
            codec.decode_packets((0, 1, 2), [np.zeros(8, dtype=np.uint8)])

    def test_decode_rejects_mismatched_shapes(self, tip6):
        codec = StripeCodec(tip6, packet_size=8)
        decoder = tip6.decoder_for((0, 1, 2))
        known = [
            np.zeros(8, dtype=np.uint8)
            for _ in decoder.plan.known_positions
        ]
        known[-1] = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError, match="all packets must match"):
            codec.decode_packets((0, 1, 2), known)

    def test_data_bytes_per_stripe(self, tip6):
        codec = StripeCodec(tip6, packet_size=4096)
        assert codec.data_bytes_per_stripe == tip6.num_data * 4096


class TestThroughput:
    def test_encode_throughput_result(self, tip6):
        result = measure_encode_throughput(tip6, data_bytes=1 << 20)
        assert result.gib_per_second > 0
        assert result.total_bytes >= 1 << 20
        assert result.xors_per_element > 0

    def test_decode_throughput_result(self, tip6):
        result = measure_decode_throughput(
            tip6, data_bytes=1 << 20, patterns=4
        )
        assert result.gib_per_second > 0
        assert result.xors_per_element > 0

    def test_throughput_math(self):
        from repro.codec.engine import ThroughputResult

        result = ThroughputResult("x", total_bytes=1 << 30, seconds=2.0,
                                  xors_per_element=3.0)
        assert result.gib_per_second == pytest.approx(0.5)
