"""Tests for XOR scheduling (bit matrix scheduling, Sec. IV-C1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmatrix import bm_mat_vec, naive_schedule, smart_schedule


def random_matrix(rows, cols, seed, density=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((rows, cols)) < density).astype(np.uint8)


@given(
    st.integers(1, 10), st.integers(1, 10), st.integers(0, 2**32 - 1)
)
@settings(max_examples=60)
def test_schedules_compute_the_product(rows, cols, seed):
    matrix = random_matrix(rows, cols, seed)
    rng = np.random.default_rng(seed ^ 0xFFFF)
    bits = rng.integers(0, 2, size=cols, dtype=np.uint8)
    expected = bm_mat_vec(matrix, bits)
    assert np.array_equal(naive_schedule(matrix).apply_bits(bits), expected)
    assert np.array_equal(smart_schedule(matrix).apply_bits(bits), expected)


@given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 2**32 - 1))
@settings(max_examples=60)
def test_smart_never_costs_more_than_naive(rows, cols, seed):
    matrix = random_matrix(rows, cols, seed)
    assert smart_schedule(matrix).xor_count <= naive_schedule(matrix).xor_count


def test_naive_xor_count_is_ones_minus_rows():
    matrix = np.array([[1, 1, 1], [1, 0, 0], [0, 0, 0]], dtype=np.uint8)
    schedule = naive_schedule(matrix)
    assert schedule.xor_count == (3 - 1) + (1 - 1)


def test_smart_exploits_shared_terms():
    """Rows differing in one position should chain at cost 1."""
    matrix = np.array(
        [
            [1, 1, 1, 1, 0],
            [1, 1, 1, 1, 1],  # = row 0 plus one term
            [0, 1, 1, 1, 1],  # = row 1 minus one term
        ],
        dtype=np.uint8,
    )
    schedule = smart_schedule(matrix)
    # naive: 3 + 4 + 3 = 10 XORs; smart: 3 (row 0) + 1 + 1 = 5.
    assert schedule.xor_count == 5


def test_apply_on_packets_matches_bits():
    matrix = random_matrix(6, 8, seed=11)
    rng = np.random.default_rng(5)
    packets = [rng.integers(0, 256, size=64, dtype=np.uint8) for _ in range(8)]
    outputs = smart_schedule(matrix).apply(packets)
    for row in range(6):
        expected = np.zeros(64, dtype=np.uint8)
        for col in range(8):
            if matrix[row, col]:
                expected ^= packets[col]
        assert np.array_equal(outputs[row], expected)


def test_apply_wrong_packet_count():
    matrix = random_matrix(2, 3, seed=1)
    schedule = naive_schedule(matrix)
    with pytest.raises(ValueError):
        schedule.apply([np.zeros(4, dtype=np.uint8)] * 2)


def test_zero_rows_produce_zero_packets():
    matrix = np.zeros((2, 3), dtype=np.uint8)
    packets = [np.ones(8, dtype=np.uint8) for _ in range(3)]
    outputs = smart_schedule(matrix).apply(packets)
    assert all(not out.any() for out in outputs)


def test_schedule_does_not_mutate_inputs():
    matrix = np.array([[1, 1], [1, 0]], dtype=np.uint8)
    packets = [np.full(4, 7, dtype=np.uint8), np.full(4, 9, dtype=np.uint8)]
    copies = [p.copy() for p in packets]
    smart_schedule(matrix).apply(packets)
    for packet, copy in zip(packets, copies):
        assert np.array_equal(packet, copy)
