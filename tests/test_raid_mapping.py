"""Unit tests for the shared address-math layer (repro.raid.mapping)."""

import pytest

from repro.analysis.trace_cost import request_runs
from repro.codes import make_code
from repro.raid import ArrayMapping, ChunkRun, DiskAddress


@pytest.fixture
def tip8():
    return make_code("tip", 8)


@pytest.fixture
def mapping(tip8):
    return ArrayMapping(tip8, chunk_bytes=1024)


class TestCapacity:
    def test_counts(self, tip8, mapping):
        assert mapping.capacity_chunks(10) == 10 * tip8.num_data
        assert mapping.capacity_bytes(10) == 10 * tip8.num_data * 1024
        assert mapping.disk_bytes(10) == 10 * tip8.rows * 1024

    def test_chunk_bytes_must_be_positive(self, tip8):
        with pytest.raises(ValueError, match="chunk_bytes"):
            ArrayMapping(tip8, chunk_bytes=0)


class TestGridAddressing:
    def test_chunk_to_stripe_row_major(self, tip8, mapping):
        per = tip8.num_data
        assert mapping.chunk_to_stripe(0) == (0, 0)
        assert mapping.chunk_to_stripe(per - 1) == (0, per - 1)
        assert mapping.chunk_to_stripe(per) == (1, 0)
        with pytest.raises(ValueError, match="negative"):
            mapping.chunk_to_stripe(-1)

    def test_chunk_position_follows_data_order(self, tip8, mapping):
        for logical in range(2 * tip8.num_data):
            stripe, pos = mapping.chunk_position(logical)
            assert pos == tip8.data_positions[logical % tip8.num_data]
            assert stripe == logical // tip8.num_data

    def test_element_address_vertical_layout(self, mapping, tip8):
        # Element (row, col) of stripe s -> disk col, chunk LBA s*rows+row.
        address = mapping.element_address(3, (2, 5))
        assert address == DiskAddress(disk=5, lba_chunk=3 * tip8.rows + 2)
        assert address.byte_offset(1024) == (3 * tip8.rows + 2) * 1024


class TestByteRuns:
    def test_aligned_single_chunk(self, mapping):
        runs = mapping.byte_runs(0, 1024)
        assert runs == [ChunkRun(0, 0, 1, skip=0, nbytes=1024)]
        assert not runs[0].is_partial(1024)

    def test_sub_chunk_keeps_byte_geometry(self, mapping):
        (run,) = mapping.byte_runs(100, 50)
        assert (run.stripe, run.start, run.length) == (0, 0, 1)
        assert run.skip == 100
        assert run.nbytes == 50
        assert run.is_partial(1024)

    def test_unaligned_multi_chunk(self, mapping):
        (run,) = mapping.byte_runs(1024 + 200, 2048)
        assert (run.start, run.length) == (1, 3)
        assert run.skip == 200
        assert run.nbytes == 2048

    def test_stripe_spanning_split(self, mapping, tip8):
        per_stripe = tip8.num_data * 1024
        runs = mapping.byte_runs(per_stripe - 1024, 2048)
        assert [(r.stripe, r.start, r.length) for r in runs] == [
            (0, tip8.num_data - 1, 1),
            (1, 0, 1),
        ]
        assert all(not r.is_partial(1024) for r in runs)

    def test_nbytes_conserved_across_stripes(self, mapping, tip8):
        per_stripe = tip8.num_data * 1024
        for offset, length in [(0, 3 * per_stripe), (777, 2 * per_stripe + 13),
                               (per_stripe - 5, 10), (1, 1)]:
            runs = mapping.byte_runs(offset, length)
            assert sum(r.nbytes for r in runs) == length
            # Chunks covered match the ceiling arithmetic.
            first = offset // 1024
            last = (offset + length - 1) // 1024
            assert sum(r.length for r in runs) == last - first + 1

    def test_zero_length_and_negative_offset(self, mapping):
        assert mapping.byte_runs(0, 0) == []
        with pytest.raises(ValueError, match="negative offset"):
            mapping.byte_runs(-1, 10)

    def test_chunk_runs_delegates(self, mapping, tip8):
        runs = mapping.chunk_runs(tip8.num_data - 1, 2)
        assert [(r.stripe, r.start, r.length) for r in runs] == [
            (0, tip8.num_data - 1, 1),
            (1, 0, 1),
        ]
        with pytest.raises(ValueError, match="negative start"):
            mapping.chunk_runs(-1, 2)


class TestAnalysisViewAgrees:
    def test_request_runs_is_the_same_math(self, tip8):
        """The Fig. 12 analysis helper and the mapping return identical
        (stripe, start, length) triples for arbitrary requests."""
        mapping = ArrayMapping(tip8, 4096)
        for offset, length in [(0, 4096), (100, 50), (8192, 3 * 4096),
                               (tip8.num_data * 4096 - 1, 4096 * 2 + 2)]:
            triples = [
                (r.stripe, r.start, r.length)
                for r in mapping.byte_runs(offset, length)
            ]
            assert triples == request_runs(tip8, offset, length, 4096)
