"""Tests for the fleet code models (array-code adapter + LRC/XORBAS)."""

import pytest

from repro.codes import make_code
from repro.fleet import ArrayCodeModel, LocalityCodeModel, make_fleet_code


class TestArrayCodeModel:
    def test_repairability_matches_decoder(self):
        """The adapter must agree with the real decoder on every pattern
        up to the fault budget (tip n=6 tolerates any triple)."""
        model = ArrayCodeModel(make_code("tip", 6))
        assert model.width == 6
        assert model.is_repairable(frozenset())
        for a in range(6):
            for b in range(a, 6):
                for c in range(b, 6):
                    assert model.is_repairable(frozenset((a, b, c)))
        assert not model.is_repairable(frozenset((0, 1, 2, 3)))

    def test_two_fault_code_rejects_triples(self):
        model = ArrayCodeModel(make_code("evenodd", 6))
        assert model.is_repairable(frozenset((1, 4)))
        assert not model.is_repairable(frozenset((0, 1, 2)))

    def test_mds_repair_reads_all_survivors(self):
        model = ArrayCodeModel(make_code("cauchy-rs", 8))
        assert model.repair_read_chunks(frozenset((3,)), 3) == 7
        assert model.repair_read_chunks(frozenset((1, 3)), 3) == 6

    def test_verdicts_memoized(self):
        model = ArrayCodeModel(make_code("star", 8))
        pattern = frozenset((0, 2, 5))
        assert model.is_repairable(pattern)
        assert model._repairable[pattern] is True


class TestLocalityCodeModel:
    def setup_method(self):
        # The canonical XORBAS(10, 6, 2): data 0-5 in two groups of 3,
        # local parities 6 and 7, global parities 8 and 9.
        self.code = LocalityCodeModel(10, 6, 2)

    def test_layout(self):
        assert self.code.width == 10
        assert self.code.m1 == 2
        assert self.code.group_size == 3
        assert self.code.group_of(0) == 0
        assert self.code.group_of(5) == 1
        assert self.code.group_of(6) == 0  # group 0's local parity
        assert self.code.group_of(9) is None  # global parity

    def test_single_failure_repairs_locally(self):
        """The locality win: one lost chunk reads k/l chunks, not k."""
        assert self.code.repair_read_chunks(frozenset((1,)), 1) == 3
        assert self.code.repair_read_chunks(frozenset((6,)), 6) == 3

    def test_multi_failure_falls_back_to_global(self):
        # Two lost in one group: the group cannot self-repair.
        assert self.code.repair_read_chunks(frozenset((0, 1)), 0) == 6

    def test_xorbas_parity_group_repair(self):
        # One lost global parity repairs from the other parities
        # (l + m1 - 1 = 3 reads), not via full decode.
        assert self.code.repair_read_chunks(frozenset((9,)), 9) == 3
        plain = LocalityCodeModel(10, 6, 2, xorbas=False)
        assert plain.repair_read_chunks(frozenset((9,)), 9) == 6

    def test_peeling_repairs_spread_failures(self):
        # One per group + one global: each peels in turn.
        assert self.code.is_repairable(frozenset((0, 3, 8)))

    def test_mr_bound(self):
        # Three data chunks of one group gone: the group's local parity
        # gives one equation, the two globals cover the rest.
        assert self.code.is_repairable(frozenset((0, 1, 2)))
        # Whole group plus a spread failure: group 0's residual is 3,
        # exceeding the two global parities.
        assert not self.code.is_repairable(frozenset((0, 1, 2, 3, 6)))
        # Two erased in one group plus both globals erased: residual
        # 1 + 2 = 3 > m1 — a 4-erasure pattern below distance coverage.
        assert not self.code.is_repairable(frozenset((0, 1, 8, 9)))
        # All parities erased: pure recomputation from intact data.
        assert self.code.is_repairable(frozenset((6, 7, 8, 9)))

    def test_repairability_cheaper_than_mds_on_average(self):
        """Across all single failures, mean repair reads must beat k."""
        reads = [
            self.code.repair_read_chunks(frozenset((c,)), c)
            for c in range(10)
        ]
        assert max(reads) < self.code.k
        assert all(r == 3 for r in reads)

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityCodeModel(10, 6, 4)  # k not divisible by l
        with pytest.raises(ValueError):
            LocalityCodeModel(8, 6, 2)  # no global parity left


class TestMakeFleetCode:
    def test_array_family_spec(self):
        model = make_fleet_code("tip", 8)
        assert isinstance(model, ArrayCodeModel)
        assert model.width == 8

    def test_xorbas_default_instance(self):
        model = make_fleet_code("xorbas")
        assert isinstance(model, LocalityCodeModel)
        assert (model.n, model.k, model.l) == (10, 6, 2)
        assert model.xorbas

    def test_explicit_locality_spec(self):
        model = make_fleet_code("lrc:12:8:2")
        assert (model.n, model.k, model.l) == (12, 8, 2)
        assert not model.xorbas

    def test_malformed_locality_spec(self):
        with pytest.raises(ValueError, match="malformed"):
            make_fleet_code("xorbas:10:6")

    def test_unknown_family_propagates(self):
        with pytest.raises(KeyError):
            make_fleet_code("nonsense", 8)
