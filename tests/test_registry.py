"""Tests for the code registry and public API surface."""

import pytest

import repro
from repro.codes.registry import (
    CODE_FAMILIES,
    EVALUATED_FAMILIES,
    available_codes,
    make_code,
    supports_size,
)


def test_available_codes_sorted_and_complete():
    names = available_codes()
    assert names == sorted(names)
    assert set(names) == {
        "tip", "star", "triple-star", "cauchy-rs", "hdd1", "evenodd", "rdp",
        "x-code", "weaver",
    }


def test_evaluated_families_are_registered():
    for family in EVALUATED_FAMILIES:
        assert family in CODE_FAMILIES


def test_make_code_unknown_family():
    with pytest.raises(KeyError, match="unknown code family"):
        make_code("raid0", 6)


@pytest.mark.parametrize("family", sorted(CODE_FAMILIES))
def test_make_code_n8(family):
    n = 7 if family == "x-code" else 8  # X-code needs a prime disk count
    code = make_code(family, n)
    assert code.cols == n


def test_supports_size():
    assert supports_size("tip", 9)
    assert supports_size("hdd1", 8)
    assert not supports_size("hdd1", 9)   # 8 is not prime
    assert not supports_size("tip", 3)
    assert not supports_size("nope", 8)


def test_paper_evaluation_sizes_all_supported():
    """The n values of Tables IV-V were chosen so every family fits."""
    for n in (6, 8, 12, 14, 18, 20, 24):
        for family in EVALUATED_FAMILIES:
            assert supports_size(family, n), (family, n)


def test_top_level_exports():
    assert repro.make_code is make_code
    code = repro.make_tip(6)
    assert isinstance(code, repro.TipCode)
    assert isinstance(repro.make_star(6), repro.ArrayCode)
    assert repro.__version__
