"""End-to-end integration tests spanning the full evaluation pipeline.

These tie the subsystems together the way the benchmarks do — codes →
analysis → traces → simulator — and pin a handful of headline numbers so
regressions anywhere in the pipeline surface immediately.
"""

import numpy as np
import pytest

from repro.analysis import (
    improvement,
    single_write_cost,
    synthetic_write_cost,
)
from repro.codes import make_code
from repro.disksim import simulate_trace
from repro.traces import generate_trace


class TestHeadlineNumbers:
    """The reproduction's anchor points (see EXPERIMENTS.md)."""

    def test_tip_single_write_is_exactly_four_everywhere(self):
        for n in (6, 8, 12, 14, 18, 20, 24):
            assert single_write_cost(make_code("tip", n)) == 4.0

    def test_star_closed_form_matches_paper_table4(self):
        paper = {6: 14.29, 8: 23.08, 12: 28.57, 14: 29.03,
                 18: 30.43, 20: 30.61, 24: 31.25}
        for n, expected in paper.items():
            tip = single_write_cost(make_code("tip", n))
            star = single_write_cost(make_code("star", n))
            assert improvement(star, tip) == pytest.approx(expected, abs=0.02)

    def test_tip_encoding_bound_at_every_native_prime(self):
        from repro.analysis.xor_cost import (
            encoding_xor_per_element,
            tip_encoding_bound,
        )
        from repro.codes.tip import TipCode

        for p in (5, 7, 11, 13, 17, 19, 23):
            assert encoding_xor_per_element(TipCode(p)) == pytest.approx(
                tip_encoding_bound(p)
            )


class TestLargerShortenedSizes:
    @pytest.mark.parametrize("n", [14, 15, 16])
    def test_shortened_tip_remains_triple_fault_tolerant(self, n):
        code = make_code("tip", n)
        assert code.cols == n
        assert code.is_mds()

    def test_shortened_tip_decode_spot_checks(self):
        code = make_code("tip", 15)
        stripe = code.random_stripe(packet_size=4, seed=15)
        rng = np.random.default_rng(0)
        for _ in range(12):
            failed = tuple(
                sorted(rng.choice(code.cols, size=3, replace=False).tolist())
            )
            damaged = stripe.copy()
            code.erase_columns(damaged, failed)
            code.decode(damaged, failed)
            assert np.array_equal(damaged, stripe), failed


class TestTraceToSimulatorConsistency:
    def test_element_io_count_follows_write_cost(self):
        """The simulator's total element I/Os for a write-only trace must
        equal 2x the analyzer's modified-element count (RMW reads +
        writes), request by request."""
        from repro.analysis.trace_cost import request_write_cost
        from repro.traces import Trace, TraceRequest

        code = make_code("tip", 8)
        chunk = 8 * 1024
        requests = [
            TraceRequest(float(i), (i * 7) * chunk, (1 + i % 4) * chunk, True)
            for i in range(25)
        ]
        trace = Trace("consistency", requests)
        result = simulate_trace(code, trace, chunk_bytes=chunk)
        expected = sum(
            2 * request_write_cost(code, r.offset, r.length, chunk)
            for r in requests
        )
        assert result.total_element_ios == expected

    def test_full_pipeline_ordering_holds(self):
        """One compact run of the Fig. 12 + Fig. 13 pipeline."""
        trace = generate_trace("financial_1", requests=600, seed=3)
        replay = trace.stretched(5.0)
        costs = {}
        latencies = {}
        for family in ("tip", "triple-star", "hdd1"):
            code = make_code(family, 8)
            costs[family] = synthetic_write_cost(code, trace)
            latencies[family] = simulate_trace(
                code, replay, seed=1
            ).mean_response_ms
        assert costs["tip"] < costs["triple-star"] < costs["hdd1"]
        assert latencies["tip"] < latencies["triple-star"]
        assert latencies["tip"] < latencies["hdd1"]
