"""Structural invariants of TIP's adjuster shortening (Sec. VII),
checked across every legal (p, removed-columns) combination up to p=19.

These pin the construction itself, complementing the end-to-end MDS and
decode tests: each removed parity chain gets exactly one adjuster, all
adjusters live on the second-to-last column, and no two chains share one.
"""

import pytest

from repro._util import primes_up_to
from repro.codes.base import Cell
from repro.codes.tip import TipCode, _shorten_tip

CASES = [
    (p, removed)
    for p in primes_up_to(19)
    if p >= 5
    for removed in range(1, (p + 1) // 2)
]


@pytest.mark.parametrize("p,removed", CASES)
def test_adjuster_structure(p, removed):
    native = TipCode(p)
    code = _shorten_tip(p, removed, name=f"tip-{p}-{removed}")
    assert code.cols == p + 1 - removed
    # Parity count is conserved: every removed parity is re-homed.
    assert code.num_parity == native.num_parity
    # Adjusters = cells that are parity here but data in the native code
    # (after undoing the column shift); all must sit on column p-1.
    adjusters = [
        pos
        for pos in code.parity_positions
        if native.kind(pos[0], pos[1] + removed) == Cell.DATA
    ]
    expected = 2 * max(removed - 1, 0)  # column 0 holds no parities
    assert len(adjusters) == expected
    for row, col in adjusters:
        assert col + removed == p - 1, (row, col)
    # One adjuster per re-homed chain, never shared.
    assert len(set(adjusters)) == len(adjusters)


@pytest.mark.parametrize("p,removed", [(7, 2), (11, 3), (13, 5)])
def test_adjuster_chains_are_pure_data(p, removed):
    """An adjuster's own chain must contain only data cells (it is
    computed first, from data, exactly as Sec. VII prescribes)."""
    native = TipCode(p)
    code = _shorten_tip(p, removed, name=f"tip-{p}-{removed}")
    for pos in code.parity_positions:
        if native.kind(pos[0], pos[1] + removed) == Cell.DATA:
            for member in code.chains[pos]:
                assert code.kind(*member) == Cell.DATA, (pos, member)


@pytest.mark.parametrize("p,removed", [(7, 2), (11, 2), (11, 4), (13, 3)])
def test_shortened_encoding_order_puts_adjusters_first(p, removed):
    """Chains that reference an adjuster must encode after it."""
    native = TipCode(p)
    code = _shorten_tip(p, removed, name=f"tip-{p}-{removed}")
    order = {pos: i for i, pos in enumerate(code.encoding_order)}
    for parity, members in code.chains.items():
        for member in members:
            if code.kind(*member) == Cell.PARITY:
                assert order[member] < order[parity], (member, parity)
    del native
