"""Tests for the classic word-based Reed-Solomon codec."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.reed_solomon import ReedSolomonCode


@pytest.fixture(scope="module")
def rs():
    return ReedSolomonCode(n=8, m=3)


def test_systematic(rs):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(rs.k, 16), dtype=np.uint8)
    shards = rs.encode(data)
    assert np.array_equal(shards[: rs.k], data)


def test_all_triple_erasures(rs):
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(rs.k, 8), dtype=np.uint8)
    shards = rs.encode(data)
    for combo in itertools.combinations(range(rs.n), 3):
        damaged = shards.copy()
        for row in combo:
            damaged[row] = 0
        repaired = rs.decode(damaged, list(combo))
        assert np.array_equal(repaired, shards), combo


def test_fewer_erasures(rs):
    rng = np.random.default_rng(2)
    data = rng.integers(0, 256, size=(rs.k, 8), dtype=np.uint8)
    shards = rs.encode(data)
    for combo in itertools.combinations(range(rs.n), 2):
        damaged = shards.copy()
        for row in combo:
            damaged[row] = 0
        assert np.array_equal(rs.decode(damaged, list(combo)), shards)


def test_too_many_erasures(rs):
    shards = np.zeros((rs.n, 4), dtype=np.uint8)
    with pytest.raises(ValueError):
        rs.decode(shards, [0, 1, 2, 3])


def test_input_validation(rs):
    with pytest.raises(ValueError):
        rs.encode(np.zeros((rs.k + 1, 4), dtype=np.uint8))
    with pytest.raises(ValueError):
        rs.decode(np.zeros((rs.n + 1, 4), dtype=np.uint8), [0])


def test_constructor_validation():
    with pytest.raises(ValueError):
        ReedSolomonCode(3, m=3)
    with pytest.raises(ValueError):
        ReedSolomonCode(300, m=3)


def test_decode_does_not_mutate_input(rs):
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=(rs.k, 4), dtype=np.uint8)
    shards = rs.encode(data)
    damaged = shards.copy()
    damaged[0] = 0
    snapshot = damaged.copy()
    rs.decode(damaged, [0])
    assert np.array_equal(damaged, snapshot)


@given(
    st.integers(0, 2**32 - 1),
    st.integers(6, 12),
    st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_random_roundtrip(seed, n, erasures):
    rs = ReedSolomonCode(n=n, m=3)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(rs.k, 8), dtype=np.uint8)
    shards = rs.encode(data)
    lost = sorted(rng.choice(n, size=erasures, replace=False).tolist())
    damaged = shards.copy()
    for row in lost:
        damaged[row] = 0
    assert np.array_equal(rs.decode(damaged, lost), shards)
