"""Tests for rebuild-read analysis."""

import pytest

from repro.analysis import recovery_cost_stats, recovery_reads
from repro.codes import make_code


@pytest.fixture(scope="module")
def tip8():
    return make_code("tip", 8)


def test_reads_bounded_by_survivors(tip8):
    for failed in ((0,), (0, 3), (0, 3, 6)):
        reads = recovery_reads(tip8, failed)
        survivors = len(tip8.decoder_for(failed).plan.known_positions)
        assert 0 < reads <= survivors


def test_single_failure_cheaper_than_triple(tip8):
    single = recovery_cost_stats(tip8, failures=1, samples=8, seed=1)
    triple = recovery_cost_stats(tip8, failures=3, samples=8, seed=1)
    assert single.mean_reads < triple.mean_reads
    assert single.mean_read_fraction <= triple.mean_read_fraction + 1e-9


def test_rebuilding_a_parityless_raid5_analogue(tip8):
    """Sanity: recovering one lost TIP disk needs most of the stripe —
    3DFT codes trade rebuild locality for update optimality."""
    stats = recovery_cost_stats(tip8, failures=1, samples=8, seed=2)
    assert stats.mean_read_fraction > 0.5


def test_stats_shape(tip8):
    stats = recovery_cost_stats(tip8, failures=2, samples=5, seed=3)
    assert stats.patterns == 5
    assert stats.mean_reads_per_recovered > 0


def test_failure_count_validation(tip8):
    with pytest.raises(ValueError):
        recovery_cost_stats(tip8, failures=0)
    with pytest.raises(ValueError):
        recovery_cost_stats(tip8, failures=4)


def test_all_families_have_finite_recovery_cost():
    for family in ("tip", "star", "triple-star", "cauchy-rs", "hdd1"):
        code = make_code(family, 8)
        stats = recovery_cost_stats(code, failures=1, samples=8, seed=4)
        assert 0 < stats.mean_read_fraction <= 1.0, family
