"""End-to-end fault drill: replay under injected faults, repair online,
verify byte-exact recovery and cross-validate against ground truth.

The acceptance scenario of the faults subsystem: a seeded
:class:`FaultPlan` with two fail-stops, rate-based latent sector errors,
and a silent bit flip fires during :meth:`BlockDevice.replay` with an
attached :class:`RepairController`; afterwards every injected fault must
be accounted for (none left active), the classification must match the
injected ground truth, and the full device contents must be byte-exact
against an independently maintained reference model — for TIP and for a
baseline code family.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.faults import FaultPlan, RepairController, Scrubber
from repro.raid.blockdevice import BlockDevice, _payload
from repro.store import ArrayStore
from repro.traces.model import Trace, TraceRequest

CHUNK = 256
STRIPES = 8


def build_device(tmp_path, family, plan):
    store = ArrayStore(
        make_code(family, 6), tmp_path, stripes=STRIPES, chunk_bytes=CHUNK,
        fault_plan=plan,
    )
    return store, BlockDevice(store)


def drill_trace(capacity, seed=7, requests=160):
    """A deterministic mixed trace confined to the device capacity.

    The final quarter is read-only: the drill's bit flip is scheduled to
    mint in that window, so the scrubber — not a foreground
    read-modify-write — is what meets the corruption (a flip consumed by
    a parity RMW before detection is laundered into the stripe, the
    documented parity-pollution hazard).
    """
    rng = np.random.default_rng(seed)
    reqs = []
    write_window = int(requests * 0.75)
    for i in range(requests):
        offset = int(rng.integers(0, capacity // 512)) * 512
        length = min(int(rng.integers(1, 5)) * 512, capacity - offset)
        is_write = i < write_window and bool(rng.random() < 0.7)
        reqs.append(TraceRequest(float(i), offset, length, is_write))
    return Trace("drill", reqs)


def reference_model(device, trace):
    """Replay the trace against a plain byte array (the ground truth)."""
    model = np.zeros(device.capacity_bytes, dtype=np.uint8)
    for request in trace:
        offset, length = device._map_request(request)
        if request.is_write:
            model[offset : offset + length] = _payload(request, length)
    return model


#: Per-family bit-flip schedule: the flip must mint on a disk the trace's
#: read-only tail still touches, *after* both rebuilds have completed —
#: the ``at_op`` values were calibrated against the deterministic
#: per-disk span-I/O counts of this exact trace + fault schedule.
FLIP_SCHEDULE = {"tip": (3, 400), "star": (0, 340)}


@pytest.mark.parametrize("family", ["tip", "star"])
def test_full_drill_recovers_byte_exact(family, tmp_path):
    flip_disk, flip_at = FLIP_SCHEDULE[family]
    plan = (
        FaultPlan(seed=11)
        .fail_stop(disk=2, at_op=60)
        .fail_stop(disk=4, at_op=250)
        .latent(disk=1, rate=0.004)
        .bit_flip(disk=flip_disk, at_op=flip_at)
    )
    store, device = build_device(tmp_path, family, plan)
    repair = RepairController(store, max_chunks_per_tick=64)
    trace = drill_trace(device.capacity_bytes)
    model = reference_model(device, trace)

    result = device.replay(trace, repair=repair, scrub_every=5)

    # Every scheduled fault actually fired.
    assert plan.stats.fail_stops == 2
    assert plan.stats.flips_minted == 1
    assert plan.stats.latent_minted >= 1
    assert repair.stats.fail_stops_handled == 2
    # Overlapping failures may merge into one combined rebuild pass.
    assert repair.stats.rebuilds_completed >= 1
    assert result.repair is repair.stats
    assert not store.failed  # replay drains the rebuild before returning

    # A final full scrub pass leaves nothing to find or fix.
    repair.scrubber.reset()
    report = repair.scrubber.run()
    assert report.unfixable == 0

    # Ground truth: no injected fault is still active in the array.
    assert plan.active_latent() == set()
    assert plan.active_corruptions() == set()
    assert all(f.status != "active" for f in plan.injected)

    # Cross-validate classification against the injected record: the
    # flip either died with a replaced disk / an overwrite, or the
    # scrubber located it on exactly the right disk.
    flip = next(f for f in plan.injected if f.kind == "bit_flip")
    if flip.status == "repaired":
        located = [
            f
            for f in repair.scrubber.report.findings
            if f.kind == "corruption" and f.fixed
        ]
        assert any(
            f.disk == flip.disk
            and f.stripe == flip.lba // store.code.rows
            for f in located
        )

    # Byte-exact read-back with the injector detached: repair must have
    # restored the *contents*, not merely silenced the errors.
    store.set_fault_plan(None)
    assert store.scrub() == []
    got = np.asarray(store.read_bytes(0, device.capacity_bytes)).reshape(-1)
    assert np.array_equal(got, model)


def test_second_failure_during_rebuild_restarts_cursor(tmp_path):
    plan = (
        FaultPlan(seed=3)
        .fail_stop(disk=0, at_op=40)
        .fail_stop(disk=5, at_op=140)
    )
    store, device = build_device(tmp_path, "tip", plan)
    repair = RepairController(store, max_chunks_per_tick=40)
    trace = drill_trace(device.capacity_bytes, seed=5, requests=120)
    model = reference_model(device, trace)
    device.replay(trace, repair=repair, scrub_every=3)
    assert repair.stats.fail_stops_handled == 2
    assert not store.failed
    store.set_fault_plan(None)
    assert store.scrub() == []
    got = np.asarray(store.read_bytes(0, device.capacity_bytes)).reshape(-1)
    assert np.array_equal(got, model)


def test_latent_error_mid_rebuild_does_not_lose_dirty_stripes(tmp_path):
    """Regression: a latent error minted by the rebuild's own reads used
    to abandon the not-yet-re-rebuilt dirty stripes, so finalization
    cleared the failure set over stale reconstructed columns."""
    plan = (
        FaultPlan(seed=7)
        .fail_stop(disk=2, at_op=80)
        .latent(disk=1, rate=0.005)
        .bit_flip(disk=3, at_op=25)
    )
    store, device = build_device(tmp_path, "tip", plan)
    repair = RepairController(store)
    from repro.traces import generate_trace

    trace = generate_trace("src2_0", requests=200, seed=42)
    device.replay(trace, repair=repair, scrub_every=20)
    repair.scrubber.reset()
    report = repair.scrubber.run()
    assert report.unfixable == 0
    assert plan.active_latent() == set()
    store.set_fault_plan(None)
    assert store.scrub() == []


def test_transient_faults_only_cost_retries(tmp_path):
    plan = FaultPlan(seed=2, max_retries=1).transient(disk=1, rate=0.05)
    store, device = build_device(tmp_path, "tip", plan)
    repair = RepairController(store)
    trace = drill_trace(device.capacity_bytes, seed=9, requests=80)
    model = reference_model(device, trace)
    result = device.replay(trace, repair=repair)
    assert repair.stats.fail_stops_handled == 0
    assert repair.stats.stripes_rebuilt == 0
    if repair.stats.transient_handled:
        assert result.retried_requests >= repair.stats.transient_handled
    store.set_fault_plan(None)
    got = np.asarray(store.read_bytes(0, device.capacity_bytes)).reshape(-1)
    assert np.array_equal(got, model)


@pytest.mark.parametrize("fail_disk", [0, 3])
def test_journal_rolls_forward_interrupted_write(fail_disk, tmp_path):
    """Sweep a fail-stop across every span I/O of a small write and check
    the journal always closes the write hole: whatever the interruption
    point (read phase, between data and parity, mid parity fan-out), the
    recovered array is consistent and carries the new payload."""
    from repro.faults import FailStopError

    rng = np.random.default_rng(0)
    interrupted_at_least_once = False
    for at_op in range(1, 14):
        store = ArrayStore(
            make_code("tip", 6),
            tmp_path / f"d{fail_disk}_{at_op}",
            stripes=4,
            chunk_bytes=CHUNK,
        )
        cap = store.capacity_chunks * CHUNK
        base = rng.integers(0, 256, cap, dtype=np.uint8)
        store.write_bytes(0, base)
        model = np.array(base)

        plan = FaultPlan(seed=0).fail_stop(disk=fail_disk, at_op=at_op)
        store.set_fault_plan(plan)
        payload = rng.integers(0, 256, 2 * CHUNK, dtype=np.uint8)
        offset = 5 * CHUNK
        try:
            store.write_bytes(offset, payload)
        except FailStopError as exc:
            interrupted_at_least_once = True
            repair = RepairController(store)
            assert repair.handle_fault(exc)
            store.write_bytes(offset, payload)  # the foreground retry
            repair.drain()
        model[offset : offset + payload.size] = payload
        assert not store.failed
        store.set_fault_plan(None)
        assert store.scrub() == [], (fail_disk, at_op)
        got = np.asarray(store.read_bytes(0, cap)).reshape(-1)
        assert np.array_equal(got, model), (fail_disk, at_op)
        store.close()
    assert interrupted_at_least_once


def test_repair_stats_account_rebuild_io(tmp_path):
    plan = FaultPlan(seed=1).fail_stop(disk=3, at_op=30)
    store, device = build_device(tmp_path, "tip", plan)
    repair = RepairController(store, max_chunks_per_tick=32)
    trace = drill_trace(device.capacity_bytes, seed=1, requests=60)
    device.replay(trace, repair=repair, scrub_every=4)
    assert repair.stats.rebuilds_completed >= 1
    assert repair.stats.stripes_rebuilt >= STRIPES
    assert repair.stats.rebuild_io.total_chunks > 0


def test_scrubber_shared_with_controller(tmp_path):
    store = ArrayStore(
        make_code("tip", 6), tmp_path, stripes=4, chunk_bytes=CHUNK,
    )
    scrubber = Scrubber(store, batch_stripes=2)
    repair = RepairController(store, scrubber=scrubber)
    assert repair.scrubber is scrubber
    assert repair.stripes_per_tick >= 1
