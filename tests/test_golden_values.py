"""Golden-value regression pins for the deterministic evaluation numbers.

Every value here is analytically determined by the constructions (no
randomness, no timing), so any drift means a code layout or the cost
analysis changed. The numbers are the ones recorded in EXPERIMENTS.md and
results/fig10_single_write.txt.
"""

import pytest

from repro.analysis import partial_write_cost, single_write_cost
from repro.analysis.xor_cost import encoding_xor_per_element
from repro.codes import make_code

#: Fig. 10 series as this reproduction measures it (results/).
GOLDEN_SINGLE_WRITE = {
    "tip": {6: 4.0, 8: 4.0, 12: 4.0, 14: 4.0, 18: 4.0, 20: 4.0, 24: 4.0},
    "star": {6: 4.6667, 8: 5.2, 12: 5.6, 14: 5.6364, 18: 5.75, 20: 5.7647,
             24: 5.8182},
    "triple-star": {6: 5.1667, 8: 5.4, 12: 5.6222, 14: 5.6818, 18: 5.7583,
                    20: 5.7843, 24: 5.8225},
    "hdd1": {6: 7.6667, 8: 8.4, 12: 9.0222, 14: 9.1818, 18: 9.3833,
             20: 9.4510, 24: 9.5498},
    "cauchy-rs": {6: 5.5556, 8: 5.6667, 12: 6.7222, 14: 6.9091},
}

#: Fig. 14b encoding complexity at n = 12 (XORs per data element).
GOLDEN_ENCODING_XOR = {
    "tip": 2.6667,        # = 3 - 3/(11-2)
    "triple-star": 2.6889,
    "star": 4.2667,
    "hdd1": 4.6889,
}

#: Fig. 11 l=2 values at n = 12.
GOLDEN_PARTIAL_L2_N12 = {
    "tip": 7.0111,
    "triple-star": 8.6444,
    "star": 9.9556,
    "hdd1": 13.1556,
}


@pytest.mark.parametrize("family", sorted(GOLDEN_SINGLE_WRITE))
def test_single_write_golden(family):
    for n, expected in GOLDEN_SINGLE_WRITE[family].items():
        measured = single_write_cost(make_code(family, n))
        assert measured == pytest.approx(expected, abs=2e-4), (family, n)


@pytest.mark.parametrize("family", sorted(GOLDEN_ENCODING_XOR))
def test_encoding_xor_golden(family):
    measured = encoding_xor_per_element(make_code(family, 12))
    assert measured == pytest.approx(GOLDEN_ENCODING_XOR[family], abs=2e-4)


@pytest.mark.parametrize("family", sorted(GOLDEN_PARTIAL_L2_N12))
def test_partial_write_l2_golden(family):
    measured = partial_write_cost(make_code(family, 12), 2)
    assert measured == pytest.approx(
        GOLDEN_PARTIAL_L2_N12[family], abs=2e-4
    )
