"""Concurrent block-service tests: locks, serial equivalence, stress.

Three layers of evidence that PR 6's "many callers, one array" story
holds:

* **lock units** — the readers-writer array lock and the refcounted
  per-stripe lock manager behave as specified (mutual exclusion where
  required, parallelism where allowed, no leaked lock entries, no
  deadlock under reversed acquisition sets);
* **serial equivalence** — the acceptance criterion: concurrent replay
  of disjoint-stripe traces is byte-identical to serial replay with
  identical aggregate ``IoCounters``, uncached and cached;
* **barrier stress** — many workers, overlapping *and* disjoint stripe
  ranges, fault injection and online repair all active, and the final
  array is still byte-exact against a faultless serial reference with
  no lost parity deltas (scrub-clean).

Every thread join carries a timeout: a deadlock fails the test instead
of hanging the suite (CI adds pytest-timeout on top).
"""

import threading
import time

import numpy as np
import pytest

from repro.codes import make_code
from repro.faults import FaultPlan, RepairController, Scrubber
from repro.faults.inject import FailStopError
from repro.raid import BlockDevice
from repro.raid.blockdevice import _payload
from repro.service import (
    ArrayRWLock,
    BlockService,
    FifoSemaphore,
    StripeLockManager,
    percentile,
    replay_batched,
    replay_concurrent,
    split_disjoint,
)
from repro.store import ArrayStore
from repro.traces import Trace, TraceRequest, generate_trace

CHUNK = 512
STRIPES = 16
JOIN_S = 60.0


def make_store(tmp_path, subdir="svc", cache_stripes=0, stripes=STRIPES, n=8):
    path = tmp_path / subdir
    path.mkdir(exist_ok=True)
    return ArrayStore(
        make_code("tip", n), path, stripes=stripes, chunk_bytes=CHUNK,
        cache_stripes=cache_stripes,
    )


def join_all(threads):
    """Join with a timeout so a deadlock is a failure, not a hang."""
    for thread in threads:
        thread.join(timeout=JOIN_S)
        assert not thread.is_alive(), f"{thread.name} stuck: deadlock?"


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.50) == 3.0
        assert percentile(samples, 1.0) == 5.0
        assert percentile(samples, 0.0) == 1.0

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], 1.5)


class TestFifoSemaphore:
    def test_wakeups_follow_arrival_order(self):
        """Strict FIFO: with the permit held, N queued waiters are
        granted in exactly the order they arrived."""
        sem = FifoSemaphore(1)
        sem.acquire()  # hold the only permit so every waiter queues
        order = []
        threads = []
        for index in range(8):
            def waiter(i=index):
                sem.acquire()
                order.append(i)
                sem.release()

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            # Don't start the next waiter until this one is queued —
            # that pins the arrival order we assert against.
            deadline = time.monotonic() + JOIN_S
            while sem.waiting < index + 1 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert sem.waiting == index + 1
            threads.append(thread)
        sem.release()
        join_all(threads)
        assert order == list(range(8))
        assert sem.waiting == 0

    def test_statistical_arrival_order_under_contention(self):
        """Statistical arrival-order: each acquire takes a monotonically
        increasing ticket immediately before queuing; with strict FIFO
        the grant sequence is (near-)sorted by ticket — the only
        inversions possible are the tiny race between taking the ticket
        and joining the queue. A barging ``threading.Semaphore`` shows
        a large inversion fraction here; we assert it stays marginal."""
        sem = FifoSemaphore(1)
        cycles = 60
        tickets = iter(range(10**9))
        ticket_lock = threading.Lock()
        grants = []

        def worker():
            for _ in range(cycles):
                with ticket_lock:
                    ticket = next(tickets)
                sem.acquire()
                grants.append(ticket)
                sem.release()

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        assert len(grants) == 4 * cycles
        inversions = sum(
            1
            for i in range(len(grants))
            for j in range(i + 1, len(grants))
            if grants[i] > grants[j]
        )
        pairs = len(grants) * (len(grants) - 1) // 2
        # Strict FIFO measures ~0 here; the bound leaves room for the
        # ticket-to-queue race but rules out semaphore-style barging.
        assert inversions / pairs < 0.05, (inversions, pairs)

    def test_over_release_raises(self):
        sem = FifoSemaphore(2)
        with pytest.raises(ValueError, match="released too many"):
            sem.release()
        sem.acquire()
        sem.release()
        with pytest.raises(ValueError, match="released too many"):
            sem.release()

    def test_counters_account_every_acquire(self):
        sem = FifoSemaphore(3)
        for _ in range(5):
            with sem:
                pass
        assert sem.acquisitions == 5
        assert sem.wait_ms >= 0.0

    def test_rejects_nonpositive_permits(self):
        with pytest.raises(ValueError, match="value"):
            FifoSemaphore(0)


class TestArrayRWLock:
    def test_shared_is_concurrent(self):
        lock = ArrayRWLock()
        entered = threading.Event()
        released = threading.Event()

        def reader():
            with lock.shared():
                entered.set()
                released.wait(JOIN_S)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        assert entered.wait(JOIN_S)
        # A second reader gets in while the first still holds shared.
        with lock.shared():
            pass
        released.set()
        join_all([thread])

    def test_exclusive_blocks_shared(self):
        lock = ArrayRWLock()
        lock.acquire_exclusive()
        got_in = threading.Event()
        thread = threading.Thread(
            target=lambda: (lock.acquire_shared(), got_in.set(),
                            lock.release_shared()),
            daemon=True,
        )
        thread.start()
        assert not got_in.wait(0.1)
        lock.release_exclusive()
        assert got_in.wait(JOIN_S)
        join_all([thread])

    def test_writer_preference_blocks_new_readers(self):
        lock = ArrayRWLock()
        lock.acquire_shared()
        writer_done = threading.Event()
        writer = threading.Thread(
            target=lambda: (lock.acquire_exclusive(), writer_done.set(),
                            lock.release_exclusive()),
            daemon=True,
        )
        writer.start()
        # Wait for the writer to register as waiting, then a new reader
        # must queue behind it instead of overtaking.
        deadline = time.monotonic() + JOIN_S
        while not lock._writers_waiting and time.monotonic() < deadline:
            time.sleep(0.001)
        assert lock._writers_waiting == 1
        late_reader_in = threading.Event()
        reader = threading.Thread(
            target=lambda: (lock.acquire_shared(), late_reader_in.set(),
                            lock.release_shared()),
            daemon=True,
        )
        reader.start()
        assert not late_reader_in.wait(0.1)
        lock.release_shared()  # writer runs first, then the late reader
        assert writer_done.wait(JOIN_S)
        assert late_reader_in.wait(JOIN_S)
        join_all([writer, reader])


class TestStripeLockManager:
    def test_locks_are_refcounted_away(self):
        manager = StripeLockManager()
        with manager.locked([3, 1, 3]):
            assert len(manager) == 2  # deduplicated: {1, 3}
        assert len(manager) == 0

    def test_overlapping_sets_are_mutually_exclusive(self):
        manager = StripeLockManager()
        shared = [0]
        iterations = 200

        def bump(stripes):
            for _ in range(iterations):
                with manager.locked(stripes):
                    value = shared[0]
                    if value % 7 == 0:
                        time.sleep(0)  # widen the lost-update window
                    shared[0] = value + 1

        threads = [
            threading.Thread(target=bump, args=(s,), daemon=True)
            for s in ([2, 5], [5, 9], [9, 2])
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        assert shared[0] == 3 * iterations

    def test_disjoint_sets_run_in_parallel(self):
        manager = StripeLockManager()
        holding = threading.Event()
        released = threading.Event()

        def holder():
            with manager.locked([1]):
                holding.set()
                released.wait(JOIN_S)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert holding.wait(JOIN_S)
        with manager.locked([2]):  # must not block on stripe 1's holder
            pass
        released.set()
        join_all([thread])

    def test_reversed_acquisition_order_does_not_deadlock(self):
        manager = StripeLockManager()

        def worker(stripes):
            for _ in range(300):
                with manager.locked(stripes):
                    pass

        threads = [
            threading.Thread(target=worker, args=(s,), daemon=True)
            for s in ([7, 3], [3, 7], [7, 3, 11], [11, 3])
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        assert len(manager) == 0


class TestSplitDisjoint:
    def test_partitions_touch_disjoint_stripes(self, tmp_path):
        store = make_store(tmp_path)
        device = BlockDevice(store)
        trace = generate_trace("prxy_0", requests=120, seed=4)
        parts = split_disjoint(trace, 4, store)
        assert sum(len(p) for p in parts) == len(trace)
        touched = []
        for part in parts:
            stripes = set()
            for request in part:
                for run in device.mapping.byte_runs(
                    request.offset, request.length
                ):
                    stripes.add(run.stripe)
            touched.append(stripes)
        for i in range(len(touched)):
            for j in range(i + 1, len(touched)):
                assert not (touched[i] & touched[j]), (i, j)

    def test_rejects_impossible_partitioning(self, tmp_path):
        store = make_store(tmp_path)
        trace = generate_trace("prxy_0", requests=8, seed=1)
        with pytest.raises(ValueError, match="cannot feed"):
            split_disjoint(trace, 9, store)
        with pytest.raises(ValueError, match="disjoint partitions"):
            split_disjoint(
                generate_trace("prxy_0", requests=64, seed=1),
                STRIPES + 1,
                store,
            )


def _serial_reference(tmp_path, traces, subdir, cache_stripes=0):
    """Replay ``traces`` back-to-back serially; return (image, io)."""
    store = make_store(tmp_path, subdir=subdir, cache_stripes=cache_stripes)
    with store:
        device = BlockDevice(store)
        before = store.io.snapshot()
        for trace in traces:
            device.replay(trace)
        io = store.io.snapshot() - before
        image = store.read_bytes(0, store.capacity_bytes).copy()
    return image, io


class TestSerialEquivalence:
    """The PR's acceptance criterion, uncached and cached."""

    @pytest.mark.parametrize("cache_stripes", [0, STRIPES])
    def test_concurrent_matches_serial(self, tmp_path, cache_stripes):
        trace = generate_trace("prxy_0", requests=200, seed=4)
        workers = 4
        store = make_store(
            tmp_path, subdir="conc", cache_stripes=cache_stripes
        )
        with store:
            parts = split_disjoint(trace, workers, store)
            result = replay_concurrent(store, parts)
            conc_image = store.read_bytes(0, store.capacity_bytes).copy()
        serial_image, serial_io = _serial_reference(
            tmp_path, parts, subdir="ser", cache_stripes=cache_stripes
        )
        assert np.array_equal(conc_image, serial_image)
        # Aggregate counters identical, field for field. (With a cache
        # this requires no evictions — capacity >= stripes touched —
        # because LRU victim choice depends on interleaving.)
        assert result.io == serial_io
        assert result.workers == workers
        assert result.requests == len(trace)
        assert len(result.latencies_ms) == len(trace)
        assert result.p99_latency_ms >= result.p50_latency_ms

    def test_single_worker_equals_plain_replay(self, tmp_path):
        trace = generate_trace("src2_0", requests=80, seed=9)
        store = make_store(tmp_path, subdir="one")
        with store:
            result = replay_concurrent(store, [trace])
            image = store.read_bytes(0, store.capacity_bytes).copy()
        serial_image, serial_io = _serial_reference(
            tmp_path, [trace], subdir="oneref"
        )
        assert np.array_equal(image, serial_image)
        assert result.io == serial_io


class _AlwaysRepairs:
    """Stub controller: claims to handle every fault (nothing changes)."""

    def handle_fault(self, exc):
        return True


class TestServiceFrontEnd:
    def test_submit_round_trip(self, tmp_path):
        store = make_store(tmp_path, subdir="fut")
        with store, BlockService(store, workers=2) as service:
            payload = bytes(range(256)) * 4
            service.submit_write(100, payload).result(timeout=JOIN_S)
            future = service.submit_read(100, len(payload))
            assert future.result(timeout=JOIN_S) == payload

    def test_close_flushes_the_cache(self, tmp_path):
        store = make_store(tmp_path, subdir="flush", cache_stripes=4)
        with store:
            service = BlockService(store)
            service.write(0, b"\xaa" * (2 * CHUNK))
            assert store.cache.dirty_stripes
            service.close()
            assert not store.cache.dirty_stripes

    def test_retry_cap_chains_the_final_fault(self, tmp_path, monkeypatch):
        store = make_store(tmp_path, subdir="cap")
        with store:
            service = BlockService(store, repair=_AlwaysRepairs())

            def always_faults(offset, data):
                raise FailStopError(0)

            monkeypatch.setattr(store, "write_bytes", always_faults)
            with pytest.raises(IOError, match="still faulting") as info:
                service.write(0, b"x" * 16)
            assert isinstance(info.value.__cause__, FailStopError)
            assert info.value.__cause__.disk == 0

    def test_qos_repair_ticks_interleave(self, tmp_path):
        store = make_store(tmp_path, subdir="qos")
        with store:
            plan = FaultPlan.parse("seed=3;latent:disk=1,rate=0.004")
            store.set_fault_plan(plan)
            repair = RepairController(store)
            trace = generate_trace("prxy_0", requests=120, seed=6)
            parts = split_disjoint(trace, 4, store)
            result = replay_concurrent(
                store, parts, repair=repair, repair_every=10
            )
            assert result.repair_ticks == len(trace) // 10
            scrubber = Scrubber(store)
            report = scrubber.run()
        assert report.unfixable == 0


def _disjoint_requests(stripes, per_stripe_bytes, seed, count=30):
    """Byte requests confined to a contiguous stripe range."""
    rng = np.random.default_rng(seed)
    lo = stripes[0] * per_stripe_bytes
    span = len(stripes) * per_stripe_bytes
    requests = []
    for _ in range(count):
        length = int(rng.integers(1, 3 * CHUNK))
        offset = lo + int(rng.integers(0, span - length))
        requests.append(
            TraceRequest(0.0, offset, length, bool(rng.random() < 0.8))
        )
    return requests


def _shared_requests(stripes, per_stripe_bytes):
    """Byte-disjoint, stripe-overlapping requests over a shared region.

    Replayed concurrently by several identical workers: payloads are
    offset-derived, so replicas write identical bytes (data idempotent,
    repeated parity deltas XOR to zero) — any interleaving must converge
    to the serial image.
    """
    lo = stripes[0] * per_stripe_bytes
    span = len(stripes) * per_stripe_bytes
    step = 3 * CHUNK // 2  # unaligned: sub-chunk heads and tails
    requests = []
    cursor = 0
    while cursor + 16 < span:
        length = min(step - 7, span - cursor)
        requests.append(TraceRequest(0.0, lo + cursor, length, True))
        cursor += step
    return requests


class TestBarrierStress:
    """Satellite: overlapping + disjoint ranges, faults + repair live."""

    OVERLAP_REPLICAS = 3

    def _run(self, store, disjoint_sets, shared, repair=None):
        service = BlockService(
            store, repair=repair, repair_every=20 if repair else 0
        )
        worker_lists = list(disjoint_sets)
        worker_lists += [shared] * self.OVERLAP_REPLICAS
        barrier = threading.Barrier(len(worker_lists))
        errors = []

        def worker(requests):
            try:
                barrier.wait(timeout=JOIN_S)
                for request in requests:
                    payload = _payload(request, request.length)
                    if request.is_write:
                        service.write(request.offset, payload)
                    else:
                        service.read(request.offset, request.length)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(
                target=worker, args=(requests,),
                name=f"stress-{index}", daemon=True,
            )
            for index, requests in enumerate(worker_lists)
        ]
        for thread in threads:
            thread.start()
        join_all(threads)
        service.close()
        if errors:
            raise errors[0]
        return service

    def test_stress_matches_serial_and_loses_no_parity(self, tmp_path):
        per_stripe = make_code("tip", 8).num_data * CHUNK
        # Stripes 0..11 split four ways (disjoint traffic); 12..15 are
        # the contended region three replicas hammer concurrently.
        disjoint_sets = [
            _disjoint_requests(range(3 * i, 3 * i + 3), per_stripe, seed=i)
            for i in range(4)
        ]
        shared = _shared_requests(range(12, 16), per_stripe)

        # Faultless serial reference: each request stream once, in order.
        ref = make_store(tmp_path, subdir="ref", cache_stripes=STRIPES)
        with ref:
            for requests in [*disjoint_sets, shared]:
                for request in requests:
                    payload = _payload(request, request.length)
                    if request.is_write:
                        ref.write_bytes(request.offset, payload)
                    else:
                        ref.read_bytes(request.offset, request.length)
            ref.flush()
            expected = ref.read_bytes(0, ref.capacity_bytes).copy()

        # Stressed run: same streams, concurrent, faults + repair live.
        store = make_store(tmp_path, subdir="hot", cache_stripes=STRIPES)
        with store:
            plan = FaultPlan.parse(
                "seed=11;fail_stop:disk=5,at_op=60;"
                "latent:disk=2,rate=0.01;transient:disk=3,rate=0.01"
            )
            store.set_fault_plan(plan)
            repair = RepairController(store)
            self._run(store, disjoint_sets, shared, repair=repair)
            # Verification phase: detach the rate-based plan so the scrub
            # audits the array instead of minting new latent errors.
            store.set_fault_plan(None)
            # No lost parity deltas: every surviving stripe's parity must
            # match its data — scrub finds nothing to fix.
            report = Scrubber(store).run()
            assert report.errors_found == 0, report.summary()
            got = store.read_bytes(0, store.capacity_bytes).copy()
            stats = repair.stats
        assert np.array_equal(got, expected)
        assert plan.stats.fail_stops + plan.stats.latent_minted > 0
        assert stats.fail_stops_handled >= 1

    def test_stress_without_faults_is_deterministic(self, tmp_path):
        per_stripe = make_code("tip", 8).num_data * CHUNK
        disjoint_sets = [
            _disjoint_requests(range(4 * i, 4 * i + 4), per_stripe,
                               seed=50 + i, count=25)
            for i in range(3)
        ]
        shared = _shared_requests(range(12, 16), per_stripe)
        images = []
        for tag in ("a", "b"):
            store = make_store(tmp_path, subdir=f"det{tag}",
                               cache_stripes=STRIPES)
            with store:
                self._run(store, disjoint_sets, shared)
                images.append(
                    store.read_bytes(0, store.capacity_bytes).copy()
                )
        assert np.array_equal(images[0], images[1])


def _batched_reference(tmp_path, trace, subdir, cache_stripes=0):
    """Serial device replay of ``trace``; return (image, io)."""
    store = make_store(tmp_path, subdir=subdir, cache_stripes=cache_stripes)
    with store:
        device = BlockDevice(store)
        before = store.io.snapshot()
        device.replay(trace)
        io = store.io.snapshot() - before
        image = store.read_bytes(0, store.capacity_bytes).copy()
    return image, io


class TestBatchedService:
    """The batched execution path: equivalence, meters, fallbacks."""

    def test_enqueue_requires_batched_mode(self, tmp_path):
        store = make_store(tmp_path, subdir="nob")
        with store, BlockService(store, workers=1) as service:
            with pytest.raises(ValueError, match="batch"):
                service.enqueue(True, 0, b"x" * 16)

    def test_rejects_bad_batch_geometry(self, tmp_path):
        store = make_store(tmp_path, subdir="badgeo")
        with store:
            with pytest.raises(ValueError, match="batch_size"):
                BlockService(store, batch_size=-1)
            with pytest.raises(ValueError, match="batch_window_s"):
                BlockService(store, batch_size=4, batch_window_s=-0.5)

    def test_batched_roundtrip(self, tmp_path):
        store = make_store(tmp_path, subdir="rt")
        payload = bytes(range(256)) * 3
        with store, BlockService(store, batch_size=8) as service:
            write = service.enqueue(True, CHUNK + 17, payload)
            assert write.result(timeout=JOIN_S) is None
            read = service.enqueue(False, CHUNK + 17, len(payload))
            assert bytes(read.result(timeout=JOIN_S)) == payload

    @pytest.mark.parametrize("batch_size", [1, 4, 64])
    def test_replay_batched_matches_serial(self, tmp_path, batch_size):
        """Acceptance: any batch size produces the serial image and the
        serial aggregate chunk ``IoCounters`` — the paper's per-write
        1+3 accounting is batching-invariant."""
        trace = generate_trace("prxy_0", requests=200, seed=4)
        store = make_store(tmp_path, subdir=f"b{batch_size}")
        with store:
            result = replay_batched(store, trace, batch_size=batch_size)
            image = store.read_bytes(0, store.capacity_bytes).copy()
        serial_image, serial_io = _batched_reference(
            tmp_path, trace, subdir=f"ref{batch_size}"
        )
        assert np.array_equal(image, serial_image)
        assert result.io == serial_io
        assert result.requests == len(trace)
        assert result.batch_size == batch_size
        if batch_size > 1:
            assert result.batches < len(trace)
        assert result.syscalls is not None and result.syscalls.total > 0
        assert result.host_cpus >= 1
        for key in (
            "admission_acquisitions",
            "admission_wait_ms",
            "array_lock_acquisitions",
            "array_lock_wait_ms",
            "stripe_lock_acquisitions",
            "stripe_lock_wait_ms",
        ):
            assert key in result.contention, key

    def test_replay_batched_cached_store_matches(self, tmp_path):
        """Cached stores route batches through ``cache.apply_batch``.

        With capacity for every touched stripe the ledger is
        eviction-free and batching must reproduce serial replay counter
        for counter. With a tiny cache, LRU victim choice depends on
        touch order — which the stripe-affinity dispatcher deliberately
        changes — so per the determinism contract only bytes must
        match, and stripe-dense batches may only shrink the chunk
        traffic the thrashing cache would otherwise spill."""
        trace = generate_trace("src2_0", requests=150, seed=8)
        store = make_store(tmp_path, subdir="bc", cache_stripes=STRIPES)
        with store:
            result = replay_batched(store, trace, batch_size=16)
            store.flush()
            image = store.read_bytes(0, store.capacity_bytes).copy()
        serial_image, serial_io = _batched_reference(
            tmp_path, trace, subdir="bcref", cache_stripes=STRIPES
        )
        assert np.array_equal(image, serial_image)
        assert result.io == serial_io

        small = make_store(tmp_path, subdir="bc4", cache_stripes=4)
        with small:
            small_result = replay_batched(small, trace, batch_size=16)
            small.flush()
            small_image = small.read_bytes(0, small.capacity_bytes).copy()
        small_serial_image, small_serial_io = _batched_reference(
            tmp_path, trace, subdir="bc4ref", cache_stripes=4
        )
        assert np.array_equal(small_image, small_serial_image)

        def total(io):
            return (
                io.data_chunks_read + io.parity_chunks_read
                + io.data_chunks_written + io.parity_chunks_written
            )

        assert total(small_result.io) <= total(small_serial_io), (
            small_result.io,
            small_serial_io,
        )

    def test_replay_batched_under_faults_falls_back(self, tmp_path):
        """A fault-injecting store dispatches per request (keeping the
        repair-retry discipline) and still converges byte-exact."""
        trace = generate_trace("prxy_0", requests=120, seed=6)
        store = make_store(tmp_path, subdir="bf")
        with store:
            plan = FaultPlan.parse("seed=3;latent:disk=1,rate=0.004")
            store.set_fault_plan(plan)
            repair = RepairController(store)
            replay_batched(
                store, trace, batch_size=16, repair=repair, repair_every=10
            )
            store.set_fault_plan(None)
            report = Scrubber(store).run()
            image = store.read_bytes(0, store.capacity_bytes).copy()
        assert report.unfixable == 0
        serial_image, _ = _batched_reference(tmp_path, trace, subdir="bfref")
        assert np.array_equal(image, serial_image)

    def test_execute_batch_cuts_syscalls_4x(self, tmp_path):
        """Acceptance: span-coalesced batch execution performs >= 4x
        fewer backing-file syscalls than per-request execution, while
        logical chunk counters stay identical (deterministic: driven
        through ``execute_batch`` directly, no dispatcher timing)."""
        rng = np.random.default_rng(21)
        ops = []
        for _ in range(64):
            length = int(rng.integers(1, 3 * CHUNK))
            capacity = STRIPES * 5 * CHUNK  # tip-8: 5 data columns
            offset = int(rng.integers(0, capacity - length))
            if rng.random() < 0.8:
                payload = rng.integers(0, 256, size=length, dtype=np.uint8)
                ops.append((True, offset, payload.tobytes()))
            else:
                ops.append((False, offset, length))

        serial = make_store(tmp_path, subdir="sys-serial")
        with serial:
            serial_results = [
                serial.write_bytes(op[1], op[2]) if op[0]
                else serial.read_bytes(op[1], op[2]).copy()
                for op in ops
            ]
            serial_io = serial.io.snapshot()
            serial_syscalls = serial.syscalls.total
            serial_image = serial.read_bytes(0, serial.capacity_bytes).copy()

        batched = make_store(tmp_path, subdir="sys-batch")
        with batched:
            batch_results = batched.execute_batch(ops)
            batch_io = batched.io.snapshot()
            batch_syscalls = batched.syscalls.total
            batch_image = (
                batched.read_bytes(0, batched.capacity_bytes).copy()
            )

        assert np.array_equal(serial_image, batch_image)
        assert serial_io == batch_io
        for index, op in enumerate(ops):
            if not op[0]:
                assert np.array_equal(
                    serial_results[index], batch_results[index]
                ), index
        assert batch_syscalls * 4 <= serial_syscalls, (
            batch_syscalls, serial_syscalls
        )
        assert batched.syscalls.vector_reads > 0
        assert batched.syscalls.vector_writes > 0


class TestReplayConcurrentHygiene:
    def test_worker_error_propagates(self, tmp_path):
        store = make_store(tmp_path, subdir="err")
        bad = Trace("bad", [
            TraceRequest(0.0, 0, 64, True) for _ in range(4)
        ])
        with store:
            original = store.write_bytes

            def explode(offset, data):
                raise RuntimeError("boom")

            store.write_bytes = explode
            try:
                with pytest.raises(RuntimeError, match="boom"):
                    replay_concurrent(store, [bad, bad])
            finally:
                store.write_bytes = original
