"""Meta-tests enforcing the documentation deliverable: every public
module, class and function in the library carries a docstring, and the
top-level docs reference every experiment."""

import ast
import inspect
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
ROOT = Path(__file__).resolve().parent.parent

ALL_MODULES = sorted(SRC.rglob("*.py"))


@pytest.mark.parametrize("path", ALL_MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize("path", ALL_MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_defs_have_docstrings(path):
    tree = ast.parse(path.read_text())
    missing = []

    def check(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if not name.startswith("_") and not ast.get_docstring(child):
                    missing.append(f"{prefix}{name}")
                if isinstance(child, ast.ClassDef):
                    check(child, prefix=f"{name}.")

    check(tree)
    assert not missing, f"{path}: missing docstrings on {missing}"


def test_design_doc_lists_every_experiment():
    design = (ROOT / "DESIGN.md").read_text()
    for artifact in ("Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13",
                     "Fig. 14", "Fig. 15", "Table II", "Table III",
                     "Table IV", "Table V", "Fig. 16"):
        assert artifact in design, artifact


def test_experiments_doc_covers_every_benchmark_result():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for token in ("Table II", "Table III", "Fig. 10", "Table IV",
                  "Fig. 11", "Table V", "Fig. 12", "Fig. 13",
                  "Fig. 14", "Fig. 15", "Fig. 16",
                  "ablation_scheduling", "rs_computational_cost"):
        assert token in experiments, token


def test_readme_documents_install_and_examples():
    readme = (ROOT / "README.md").read_text()
    assert "pip install -e ." in readme
    assert "pytest tests/" in readme
    for example in sorted((ROOT / "examples").glob("*.py")):
        assert example.name in readme, example.name


def test_every_public_symbol_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_public_api_docstrings_at_runtime():
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"
