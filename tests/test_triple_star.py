"""Tests for Triple-Star (paper's Fig. 2 and baseline behaviour)."""

import itertools

import numpy as np
import pytest

from repro.codes.triple_star import TripleStarCode, make_triple_star


class TestStructure:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_shape(self, p):
        code = TripleStarCode(p)
        assert code.rows == p - 1
        assert code.cols == p + 2
        assert code.k == p - 1

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            TripleStarCode(4)


class TestFig2Examples:
    """The worked examples of the TIP paper's Fig. 2 (p = 5)."""

    def test_horizontal(self):
        code = TripleStarCode(5)
        assert set(code.chains[(0, 4)]) == {(0, 0), (0, 1), (0, 2), (0, 3)}

    def test_anti_diagonal(self):
        # C0,5 = C0,0 ^ C1,1 ^ C2,2 ^ C3,3
        code = TripleStarCode(5)
        assert set(code.chains[(0, 5)]) == {(0, 0), (1, 1), (2, 2), (3, 3)}

    def test_diagonal(self):
        # C0,6 = C0,0 ^ C3,2 ^ C2,3 ^ C1,4 (includes horizontal col 4)
        code = TripleStarCode(5)
        assert set(code.chains[(0, 6)]) == {(0, 0), (3, 2), (2, 3), (1, 4)}

    def test_horizontal_parity_inside_diagonal_chains(self):
        """The chained-layout property motivating TIP."""
        code = TripleStarCode(5)
        horizontal_cells = {(i, 4) for i in range(4)}
        diag_members = set().union(
            *(code.chains[(i, 6)] for i in range(4))
        )
        anti_members = set().union(
            *(code.chains[(i, 5)] for i in range(4))
        )
        assert horizontal_cells & diag_members
        assert horizontal_cells & anti_members

    def test_fig2d_update_example(self):
        """Writing C1,0 modifies the horizontal parity C1,4, the
        anti-diagonal parities C1,5 and C2,5, and the diagonal parities
        C0,6 and C1,6 — five parities total (Fig. 2(d))."""
        code = TripleStarCode(5)
        penalty = code.update_penalty((1, 0))
        assert penalty == frozenset(
            {(1, 4), (1, 5), (2, 5), (0, 6), (1, 6)}
        )


class TestBehaviour:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_mds(self, p):
        assert TripleStarCode(p).is_mds()

    @pytest.mark.parametrize("p", [3, 5])
    def test_decode_all_triples(self, p):
        code = TripleStarCode(p)
        stripe = code.random_stripe(packet_size=4, seed=p)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_make_triple_star_sizes(self):
        for n in (4, 5, 6, 7, 8, 9):
            assert make_triple_star(n).cols == n
        with pytest.raises(ValueError):
            make_triple_star(3)

    def test_shortened_still_mds(self):
        assert make_triple_star(6).is_mds()
