"""Tests for the MTTDL models (Markov closed form + Monte Carlo)."""

import numpy as np
import pytest

from repro.reliability import (
    ArrayReliability,
    Fixed,
    Weibull,
    mttdl,
    simulate_mttdl,
)


class TestMarkov:
    def test_raid0_mttdl_is_first_failure(self):
        """m=0: MTTDL = MTTF / n (minimum of n exponentials)."""
        model = ArrayReliability(
            disks=10, faults_tolerated=0, disk_mttf_hours=1000.0
        )
        assert model.mttdl_hours() == pytest.approx(100.0)

    def test_known_raid5_formula(self):
        """Classic approximation: MTTDL ~ MTTF^2 / (n(n-1) * MTTR) when
        mu >> lambda; exact solution must be within 1%."""
        n, mttf, mttr = 8, 1_000_000.0, 24.0
        approx = mttf**2 / (n * (n - 1) * mttr)
        exact = mttdl(n, 1, mttf, mttr)
        assert exact == pytest.approx(approx, rel=0.01)

    def test_extra_parity_multiplies_mttdl(self):
        """The 3DFT motivation: each tolerated fault buys orders of
        magnitude (roughly MTTF / (n * MTTR) per step)."""
        values = [mttdl(12, m) for m in (0, 1, 2, 3)]
        for weaker, stronger in zip(values, values[1:]):
            assert stronger > weaker * 1000

    def test_more_disks_less_reliable(self):
        assert mttdl(24, 3) < mttdl(8, 3)

    def test_faster_rebuild_more_reliable(self):
        assert mttdl(12, 2, rebuild_hours=6.0) > mttdl(12, 2, rebuild_hours=48.0)

    def test_serial_rebuild_weaker(self):
        parallel = ArrayReliability(12, 3, parallel_rebuild=True)
        serial = ArrayReliability(12, 3, parallel_rebuild=False)
        assert serial.mttdl_hours() < parallel.mttdl_hours()

    def test_annual_loss_probability_bounds(self):
        model = ArrayReliability(12, 3)
        prob = model.annual_loss_probability()
        assert 0.0 < prob < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayReliability(disks=3, faults_tolerated=3)
        with pytest.raises(ValueError):
            ArrayReliability(disks=4, faults_tolerated=-1)
        with pytest.raises(ValueError):
            ArrayReliability(disks=4, faults_tolerated=1, rebuild_hours=0.0)


class TestMonteCarlo:
    def test_agrees_with_markov_raid0(self):
        exact = mttdl(6, 0, disk_mttf_hours=1000.0)
        sim = simulate_mttdl(
            6, 0, disk_mttf_hours=1000.0, trials=3000, seed=1
        )
        assert sim.mean_hours == pytest.approx(exact, rel=0.1)

    def test_agrees_with_markov_raid5(self):
        """Use a fast-failing configuration so trials are cheap."""
        exact = mttdl(6, 1, disk_mttf_hours=500.0, rebuild_hours=100.0)
        sim = simulate_mttdl(
            6, 1, disk_mttf_hours=500.0, rebuild_hours=100.0,
            trials=2000, seed=2,
        )
        assert sim.mean_hours == pytest.approx(exact, rel=0.12)

    def test_deterministic_given_seed(self):
        a = simulate_mttdl(6, 1, trials=20, seed=9,
                           disk_mttf_hours=100.0, rebuild_hours=50.0)
        b = simulate_mttdl(6, 1, trials=20, seed=9,
                           disk_mttf_hours=100.0, rebuild_hours=50.0)
        assert a.mean_hours == b.mean_hours

    def test_deterministic_rebuild_mode(self):
        result = simulate_mttdl(
            6, 1, disk_mttf_hours=200.0, rebuild_hours=100.0,
            trials=500, seed=3, deterministic_rebuild=True,
        )
        assert result.mean_hours > 0
        assert result.min_hours <= result.mean_hours <= result.max_hours

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_mttdl(3, 3)
        with pytest.raises(ValueError):
            simulate_mttdl(6, 1, trials=0)


class TestRngInjection:
    """The injected-randomness contract shared with the fleet simulator."""

    FAST = dict(disk_mttf_hours=100.0, rebuild_hours=50.0, trials=30)

    def test_seed_sequence_matches_equivalent_seed(self):
        """seed=N and rng=SeedSequence(N) must be the same stream."""
        by_seed = simulate_mttdl(6, 1, seed=9, **self.FAST)
        by_seq = simulate_mttdl(
            6, 1, rng=np.random.SeedSequence(9), **self.FAST
        )
        assert by_seq.mean_hours == by_seed.mean_hours
        assert by_seq.min_hours == by_seed.min_hours

    def test_injected_generator_is_shared_and_advanced(self):
        """Passing a Generator shares the caller's stream: two calls on
        one generator differ, and the draws are reproducible from the
        underlying seed."""
        rng = np.random.default_rng(21)
        first = simulate_mttdl(6, 1, rng=rng, **self.FAST)
        second = simulate_mttdl(6, 1, rng=rng, **self.FAST)
        assert first.mean_hours != second.mean_hours
        replay = simulate_mttdl(
            6, 1, rng=np.random.default_rng(21), **self.FAST
        )
        assert replay.mean_hours == first.mean_hours

    def test_rng_overrides_seed(self):
        a = simulate_mttdl(6, 1, seed=1, rng=np.random.SeedSequence(5),
                           **self.FAST)
        b = simulate_mttdl(6, 1, seed=2, rng=np.random.SeedSequence(5),
                           **self.FAST)
        assert a.mean_hours == b.mean_hours

    def test_spawned_streams_are_independent(self):
        """The fleet pattern: per-array children of one SeedSequence
        give different histories."""
        children = np.random.SeedSequence(3).spawn(2)
        a = simulate_mttdl(6, 1, rng=children[0], **self.FAST)
        b = simulate_mttdl(6, 1, rng=children[1], **self.FAST)
        assert a.mean_hours != b.mean_hours

    def test_explicit_rebuild_time_distribution(self):
        """rebuild_time overrides rebuild_hours/deterministic_rebuild;
        Fixed matches the deterministic_rebuild shorthand exactly."""
        shorthand = simulate_mttdl(
            6, 1, seed=7, deterministic_rebuild=True, **self.FAST
        )
        explicit = simulate_mttdl(
            6, 1, seed=7, rebuild_time=Fixed(50.0), **self.FAST
        )
        assert explicit.mean_hours == shorthand.mean_hours

    def test_weibull_rebuild_law_runs(self):
        result = simulate_mttdl(
            6, 1, seed=8, rebuild_time=Weibull(1.5, 50.0), **self.FAST
        )
        assert result.min_hours > 0


class TestSectorErrors:
    """The sector-error extension (latent errors + scrubbing)."""

    def test_zero_rate_is_exact_identity(self):
        """Golden preservation: rate=0 must reproduce the pure
        disk-failure chain bit for bit."""
        base = ArrayReliability(12, 3)
        extended = ArrayReliability(
            12, 3, latent_error_rate=0.0, scrub_interval_hours=168.0
        )
        assert extended.mttdl_hours() == base.mttdl_hours()
        assert extended.critical_sector_loss_probability() == 0.0

    def test_monte_carlo_zero_rate_preserves_rng_stream(self):
        """The sector draw is guarded: seeded results with the model off
        are byte-identical to the pre-extension simulator."""
        fast = dict(disk_mttf_hours=500.0, rebuild_hours=100.0)
        base = simulate_mttdl(8, 2, trials=60, seed=4, **fast)
        extended = simulate_mttdl(
            8, 2, trials=60, seed=4, latent_error_rate=0.0,
            scrub_interval_hours=168.0, **fast,
        )
        assert extended.mean_hours == base.mean_hours
        assert extended.min_hours == base.min_hours
        assert extended.max_hours == base.max_hours
        assert extended.sector_losses == 0

    def test_latent_errors_reduce_mttdl(self):
        with_lse = mttdl(
            12, 3, latent_error_rate=1e-5, scrub_interval_hours=168.0
        )
        without = mttdl(12, 3)
        assert with_lse < without

    def test_scrubbing_recovers_reliability(self):
        """Shorter scrub interval -> shorter exposure -> higher MTTDL;
        never scrubbed (interval 0) is the worst case."""
        never = mttdl(12, 3, latent_error_rate=1e-6)
        weekly = mttdl(
            12, 3, latent_error_rate=1e-6, scrub_interval_hours=168.0
        )
        daily = mttdl(
            12, 3, latent_error_rate=1e-6, scrub_interval_hours=24.0
        )
        assert never < weekly < daily

    def test_detection_fraction_scales_exposure(self):
        early = ArrayReliability(
            12, 3, latent_error_rate=1e-4, scrub_interval_hours=168.0,
            latent_detection_fraction=0.1,
        )
        late = ArrayReliability(
            12, 3, latent_error_rate=1e-4, scrub_interval_hours=168.0,
            latent_detection_fraction=0.9,
        )
        assert early.critical_sector_loss_probability() < (
            late.critical_sector_loss_probability()
        )
        assert early.mttdl_hours() > late.mttdl_hours()

    def test_markov_and_monte_carlo_agree_with_sectors(self):
        """Cross-validation under identical sector parameters (the
        rates are pushed up so losses happen within few trials)."""
        kwargs = dict(
            disks=8,
            faults_tolerated=1,
            disk_mttf_hours=2000.0,
            rebuild_hours=500.0,
            latent_error_rate=1e-3,
            scrub_interval_hours=500.0,
        )
        exact = ArrayReliability(**kwargs).mttdl_hours()
        sim = simulate_mttdl(trials=3000, seed=11, **kwargs)
        assert sim.mean_hours == pytest.approx(exact, rel=0.1)
        assert sim.sector_losses > 0

    def test_sector_params_validated(self):
        with pytest.raises(ValueError):
            ArrayReliability(8, 2, latent_error_rate=-1.0)
        with pytest.raises(ValueError):
            ArrayReliability(8, 2, scrub_interval_hours=-1.0)
        with pytest.raises(ValueError):
            ArrayReliability(8, 2, latent_detection_fraction=1.5)
