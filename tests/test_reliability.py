"""Tests for the MTTDL models (Markov closed form + Monte Carlo)."""

import pytest

from repro.reliability import ArrayReliability, mttdl, simulate_mttdl


class TestMarkov:
    def test_raid0_mttdl_is_first_failure(self):
        """m=0: MTTDL = MTTF / n (minimum of n exponentials)."""
        model = ArrayReliability(
            disks=10, faults_tolerated=0, disk_mttf_hours=1000.0
        )
        assert model.mttdl_hours() == pytest.approx(100.0)

    def test_known_raid5_formula(self):
        """Classic approximation: MTTDL ~ MTTF^2 / (n(n-1) * MTTR) when
        mu >> lambda; exact solution must be within 1%."""
        n, mttf, mttr = 8, 1_000_000.0, 24.0
        approx = mttf**2 / (n * (n - 1) * mttr)
        exact = mttdl(n, 1, mttf, mttr)
        assert exact == pytest.approx(approx, rel=0.01)

    def test_extra_parity_multiplies_mttdl(self):
        """The 3DFT motivation: each tolerated fault buys orders of
        magnitude (roughly MTTF / (n * MTTR) per step)."""
        values = [mttdl(12, m) for m in (0, 1, 2, 3)]
        for weaker, stronger in zip(values, values[1:]):
            assert stronger > weaker * 1000

    def test_more_disks_less_reliable(self):
        assert mttdl(24, 3) < mttdl(8, 3)

    def test_faster_rebuild_more_reliable(self):
        assert mttdl(12, 2, rebuild_hours=6.0) > mttdl(12, 2, rebuild_hours=48.0)

    def test_serial_rebuild_weaker(self):
        parallel = ArrayReliability(12, 3, parallel_rebuild=True)
        serial = ArrayReliability(12, 3, parallel_rebuild=False)
        assert serial.mttdl_hours() < parallel.mttdl_hours()

    def test_annual_loss_probability_bounds(self):
        model = ArrayReliability(12, 3)
        prob = model.annual_loss_probability()
        assert 0.0 < prob < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayReliability(disks=3, faults_tolerated=3)
        with pytest.raises(ValueError):
            ArrayReliability(disks=4, faults_tolerated=-1)
        with pytest.raises(ValueError):
            ArrayReliability(disks=4, faults_tolerated=1, rebuild_hours=0.0)


class TestMonteCarlo:
    def test_agrees_with_markov_raid0(self):
        exact = mttdl(6, 0, disk_mttf_hours=1000.0)
        sim = simulate_mttdl(
            6, 0, disk_mttf_hours=1000.0, trials=3000, seed=1
        )
        assert sim.mean_hours == pytest.approx(exact, rel=0.1)

    def test_agrees_with_markov_raid5(self):
        """Use a fast-failing configuration so trials are cheap."""
        exact = mttdl(6, 1, disk_mttf_hours=500.0, rebuild_hours=100.0)
        sim = simulate_mttdl(
            6, 1, disk_mttf_hours=500.0, rebuild_hours=100.0,
            trials=2000, seed=2,
        )
        assert sim.mean_hours == pytest.approx(exact, rel=0.12)

    def test_deterministic_given_seed(self):
        a = simulate_mttdl(6, 1, trials=20, seed=9,
                           disk_mttf_hours=100.0, rebuild_hours=50.0)
        b = simulate_mttdl(6, 1, trials=20, seed=9,
                           disk_mttf_hours=100.0, rebuild_hours=50.0)
        assert a.mean_hours == b.mean_hours

    def test_deterministic_rebuild_mode(self):
        result = simulate_mttdl(
            6, 1, disk_mttf_hours=200.0, rebuild_hours=100.0,
            trials=500, seed=3, deterministic_rebuild=True,
        )
        assert result.mean_hours > 0
        assert result.min_hours <= result.mean_hours <= result.max_hours

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_mttdl(3, 3)
        with pytest.raises(ValueError):
            simulate_mttdl(6, 1, trials=0)
