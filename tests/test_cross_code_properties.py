"""Cross-code property-based tests: invariants every construction shares."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmatrix import bm_mul
from repro.codes import make_code
from repro.codes.registry import CODE_FAMILIES

FAMILIES_N8 = sorted(CODE_FAMILIES)

#: X-code is a vertical code defined only for prime n.
SIZE_FOR = {"x-code": 7}


def code_at_8(family):
    return make_code(family, SIZE_FOR.get(family, 8))


@pytest.mark.parametrize("family", FAMILIES_N8)
def test_parity_check_annihilates_generator(family):
    code = code_at_8(family)
    assert not bm_mul(code.parity_check_matrix(), code.generator_matrix()).any()


@pytest.mark.parametrize("family", FAMILIES_N8)
def test_encoded_stripe_verifies(family):
    code = code_at_8(family)
    stripe = code.random_stripe(packet_size=16, seed=1)
    assert code.verify_stripe(stripe)


@pytest.mark.parametrize("family", FAMILIES_N8)
def test_update_penalty_matches_reencode_diff(family):
    """Flipping one data element and re-encoding must change exactly the
    parities in its update-penalty closure — the invariant connecting the
    write-cost analysis (Figs. 10-12) to the actual encoder."""
    code = code_at_8(family)
    stripe = code.random_stripe(packet_size=4, seed=2)
    pos = code.data_positions[len(code.data_positions) // 2]
    modified = stripe.copy()
    modified[pos[0], pos[1], 0] ^= 0xFF
    code.encode(modified)
    changed = {
        parity
        for parity in code.parity_positions
        if not np.array_equal(
            modified[parity[0], parity[1]], stripe[parity[0], parity[1]]
        )
    }
    assert changed == set(code.update_penalty(pos))


@pytest.mark.parametrize("family", FAMILIES_N8)
def test_decode_handles_parity_only_failures(family):
    """Losing only parity disks must also be repaired (re-encode path)."""
    code = code_at_8(family)
    stripe = code.random_stripe(packet_size=8, seed=3)
    parity_cols = sorted({pos[1] for pos in code.parity_positions})
    failed = tuple(parity_cols[: code.faults])
    damaged = stripe.copy()
    code.erase_columns(damaged, failed)
    code.decode(damaged, failed)
    assert np.array_equal(damaged, stripe)


@given(
    family=st.sampled_from(["tip", "star", "triple-star", "cauchy-rs", "hdd1"]),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_random_triple_failure_roundtrip(family, seed):
    code = code_at_8(family)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(code.num_data, 4), dtype=np.uint8)
    stripe = code.make_stripe(data)
    failed = tuple(sorted(rng.choice(code.cols, size=3, replace=False).tolist()))
    damaged = stripe.copy()
    code.erase_columns(damaged, failed)
    code.decode(damaged, failed)
    assert np.array_equal(damaged, stripe)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_iterative_reconstruction_equals_direct(seed):
    rng = np.random.default_rng(seed)
    family = ["tip", "star", "triple-star"][seed % 3]
    code = code_at_8(family)
    data = rng.integers(0, 256, size=(code.num_data, 4), dtype=np.uint8)
    stripe = code.make_stripe(data)
    failed = tuple(sorted(rng.choice(code.cols, size=3, replace=False).tolist()))
    direct = stripe.copy()
    code.erase_columns(direct, failed)
    code.decode(direct, failed, iterative=False)
    iterative = stripe.copy()
    code.erase_columns(iterative, failed)
    code.decode(iterative, failed, iterative=True)
    assert np.array_equal(direct, stripe)
    assert np.array_equal(iterative, stripe)


@pytest.mark.parametrize("family", ["tip", "star", "triple-star", "cauchy-rs", "hdd1"])
def test_mds_storage_is_k_over_n(family):
    """MDS property: stored data fraction equals k/n exactly."""
    code = code_at_8(family)
    assert code.num_data * code.cols == code.k * code.cols * code.rows * (
        code.num_data // (code.k * code.rows)
    ) or code.num_data == code.k * code.rows
    assert code.storage_efficiency == pytest.approx(code.k / code.n)
