"""Tests for trace-driven write complexity (Fig. 12 machinery)."""

import pytest

from repro.analysis import synthetic_write_cost
from repro.analysis.trace_cost import request_runs, request_write_cost
from repro.analysis.write_cost import (
    full_stripe_write_cost,
    single_write_cost,
)
from repro.codes import make_code
from repro.traces import Trace, TraceRequest, generate_trace

CHUNK = 8 * 1024


@pytest.fixture(scope="module")
def tip8():
    return make_code("tip", 8)


class TestRequestRuns:
    def test_single_chunk(self, tip8):
        runs = request_runs(tip8, 0, CHUNK, CHUNK)
        assert runs == [(0, 0, 1)]

    def test_sub_chunk_request_touches_one_element(self, tip8):
        assert request_runs(tip8, 100, 200, CHUNK) == [(0, 0, 1)]

    def test_unaligned_request_spans_two_chunks(self, tip8):
        runs = request_runs(tip8, CHUNK // 2, CHUNK, CHUNK)
        assert runs == [(0, 0, 2)]

    def test_stripe_spanning_request(self, tip8):
        per_stripe = tip8.num_data
        offset = (per_stripe - 1) * CHUNK
        runs = request_runs(tip8, offset, 2 * CHUNK, CHUNK)
        assert runs == [(0, per_stripe - 1, 1), (1, 0, 1)]

    def test_full_stripe_run(self, tip8):
        runs = request_runs(tip8, 0, tip8.num_data * CHUNK, CHUNK)
        assert runs == [(0, 0, tip8.num_data)]

    def test_zero_length(self, tip8):
        assert request_runs(tip8, 0, 0, CHUNK) == []

    def test_chunk_size_validation(self, tip8):
        with pytest.raises(ValueError):
            request_runs(tip8, 0, 512, 0)


class TestRequestCost:
    def test_single_chunk_write_cost_is_optimal_for_tip(self, tip8):
        assert request_write_cost(tip8, 0, CHUNK, CHUNK) == 4

    def test_full_stripe_cost(self, tip8):
        cost = request_write_cost(tip8, 0, tip8.num_data * CHUNK, CHUNK)
        assert cost == full_stripe_write_cost(tip8)

    def test_spanning_request_sums_per_stripe_costs(self, tip8):
        per_stripe = tip8.num_data
        offset = (per_stripe - 1) * CHUNK
        cost = request_write_cost(tip8, offset, 2 * CHUNK, CHUNK)
        assert cost == 8  # two isolated single writes of 4 each


class TestSyntheticWriteCost:
    def test_single_chunk_trace_equals_single_write_cost(self, tip8):
        requests = [
            TraceRequest(float(i), i * CHUNK, CHUNK, True) for i in range(50)
        ]
        trace = Trace("all-singles", requests)
        assert synthetic_write_cost(tip8, trace, CHUNK) == pytest.approx(
            single_write_cost(tip8), abs=0.5
        )

    def test_reads_are_ignored(self, tip8):
        requests = [
            TraceRequest(0.0, 0, CHUNK, True),
            TraceRequest(1.0, 0, 64 * CHUNK, False),
        ]
        assert synthetic_write_cost(tip8, Trace("t", requests), CHUNK) == 4

    def test_write_free_trace_rejected(self, tip8):
        trace = Trace("reads", [TraceRequest(0.0, 0, CHUNK, False)])
        with pytest.raises(ValueError):
            synthetic_write_cost(tip8, trace, CHUNK)

    def test_fig12_tip_wins_on_every_msr_workload(self):
        """Fig. 12's headline: TIP has the fewest I/Os per write request
        on the MSR-like workloads, with the gain growing with array size.
        At n=6 STAR's tiny stripe (p=3) turns many requests into cheap
        full-stripe writes, so TIP is only required to be within 5% there.
        """
        for name in ("prxy_0", "src2_0", "stg_0", "usr_0"):
            trace = generate_trace(name, requests=1500, seed=11)
            for n in (8, 12):
                tip_cost = synthetic_write_cost(make_code("tip", n), trace)
                for family in ("star", "triple-star", "hdd1"):
                    other = synthetic_write_cost(make_code(family, n), trace)
                    assert tip_cost < other, (name, n, family)
            tip6 = synthetic_write_cost(make_code("tip", 6), trace)
            for family in ("star", "triple-star", "hdd1"):
                other = synthetic_write_cost(make_code(family, 6), trace)
                assert tip6 < other * 1.10, (name, family)

    def test_larger_requests_cost_more_but_amortize(self, tip8):
        small = Trace("s", [TraceRequest(0.0, 0, CHUNK, True)])
        large = Trace("l", [TraceRequest(0.0, 0, 6 * CHUNK, True)])
        cost_small = synthetic_write_cost(tip8, small, CHUNK)
        cost_large = synthetic_write_cost(tip8, large, CHUNK)
        assert cost_large > cost_small
        assert cost_large / 6 < cost_small
