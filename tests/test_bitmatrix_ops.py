"""Tests for GF(2) dense matrix operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmatrix import (
    bm_identity,
    bm_inv,
    bm_is_invertible,
    bm_mat_vec,
    bm_mul,
    bm_rank,
    bm_solve,
)
from repro.bitmatrix.ops import as_bitmatrix


def random_invertible(size: int, rng: np.random.Generator) -> np.ndarray:
    while True:
        mat = rng.integers(0, 2, size=(size, size), dtype=np.uint8)
        if bm_is_invertible(mat):
            return mat


def test_as_bitmatrix_rejects_bad_values():
    with pytest.raises(ValueError):
        as_bitmatrix(np.array([[0, 2]]))
    with pytest.raises(ValueError):
        as_bitmatrix(np.zeros(3))


def test_identity_and_mul():
    eye = bm_identity(4)
    mat = np.array([[1, 0, 1, 1]] * 4, dtype=np.uint8)
    assert np.array_equal(bm_mul(eye, mat), mat)
    assert np.array_equal(bm_mul(mat, eye), mat)


def test_mul_is_mod2():
    a = np.array([[1, 1]], dtype=np.uint8)
    b = np.array([[1], [1]], dtype=np.uint8)
    assert bm_mul(a, b)[0, 0] == 0  # 1+1 = 0 over GF(2)


def test_mul_shape_mismatch():
    with pytest.raises(ValueError):
        bm_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))


def test_rank_examples():
    assert bm_rank(bm_identity(5)) == 5
    assert bm_rank(np.zeros((3, 4), dtype=np.uint8)) == 0
    dup = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
    assert bm_rank(dup) == 2


@given(st.integers(1, 8), st.integers(0, 2**32 - 1))
@settings(max_examples=40)
def test_inverse_roundtrip(size, seed):
    rng = np.random.default_rng(seed)
    mat = random_invertible(size, rng)
    inv = bm_inv(mat)
    assert np.array_equal(bm_mul(mat, inv), bm_identity(size))
    assert np.array_equal(bm_mul(inv, mat), bm_identity(size))


def test_inverse_of_singular_raises():
    singular = np.array([[1, 1], [1, 1]], dtype=np.uint8)
    with pytest.raises(ValueError):
        bm_inv(singular)
    with pytest.raises(ValueError):
        bm_inv(np.zeros((2, 3), dtype=np.uint8))


@given(st.integers(1, 8), st.integers(0, 2**32 - 1))
@settings(max_examples=40)
def test_solve_matches_inverse(size, seed):
    rng = np.random.default_rng(seed)
    mat = random_invertible(size, rng)
    rhs = rng.integers(0, 2, size=size, dtype=np.uint8)
    solution = bm_solve(mat, rhs)
    assert np.array_equal(bm_mat_vec(mat, solution), rhs)


def test_solve_matrix_rhs():
    rng = np.random.default_rng(3)
    mat = random_invertible(5, rng)
    rhs = rng.integers(0, 2, size=(5, 3), dtype=np.uint8)
    solution = bm_solve(mat, rhs)
    assert solution.shape == (5, 3)
    assert np.array_equal(bm_mul(mat, solution), rhs)


def test_solve_singular_raises():
    with pytest.raises(ValueError):
        bm_solve(np.zeros((2, 2), dtype=np.uint8), np.zeros(2, dtype=np.uint8))


def test_solve_rhs_shape_mismatch():
    mat = bm_identity(3)
    with pytest.raises(ValueError):
        bm_solve(mat, np.zeros(4, dtype=np.uint8))


def test_mat_vec_basic():
    mat = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
    vec = np.array([1, 1, 1], dtype=np.uint8)
    assert np.array_equal(bm_mat_vec(mat, vec), np.array([0, 0], dtype=np.uint8))
