"""Tests for the paper's specialized TIP decoder (Sec. III-C/III-D)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.tip import TipAlgebraicDecoder, TipCode, make_tip


@pytest.fixture(scope="module", params=[3, 5, 7])
def code(request):
    return TipCode(request.param)


def test_requires_native_tip():
    shortened = make_tip(9)
    with pytest.raises(TypeError):
        TipAlgebraicDecoder(shortened)  # type: ignore[arg-type]


def test_case2_all_data_side_triples(code):
    """Three failures among columns 0..p-1: the cross-pattern path."""
    p = code.p
    stripe = code.random_stripe(packet_size=8, seed=p * 11)
    decoder = code.algebraic_decoder()
    for combo in itertools.combinations(range(p), 3):
        damaged = stripe.copy()
        decoder.decode(damaged, combo)
        assert np.array_equal(damaged, stripe), combo


def test_case1_horizontal_column_failed(code):
    """Failures including column p: the peeling path."""
    p = code.p
    stripe = code.random_stripe(packet_size=8, seed=p * 13)
    decoder = code.algebraic_decoder()
    for pair in itertools.combinations(range(p), 2):
        damaged = stripe.copy()
        decoder.decode(damaged, pair + (p,))
        assert np.array_equal(damaged, stripe), pair


def test_fewer_failures_delegate(code):
    stripe = code.random_stripe(packet_size=8, seed=3)
    decoder = code.algebraic_decoder()
    for combo in itertools.combinations(range(code.cols), 2):
        damaged = stripe.copy()
        decoder.decode(damaged, combo)
        assert np.array_equal(damaged, stripe)
    for col in range(code.cols):
        damaged = stripe.copy()
        decoder.decode(damaged, (col,))
        assert np.array_equal(damaged, stripe)


def test_decoder_erases_before_decoding(code):
    """The decoder must not trust garbage in failed columns."""
    stripe = code.random_stripe(packet_size=8, seed=4)
    damaged = stripe.copy()
    damaged[:, 0, :] = 0xAA  # garbage, not zeros
    damaged[:, 1, :] = 0x55
    damaged[:, 2, :] = 0x33
    code.algebraic_decoder().decode(damaged, (0, 1, 2))
    assert np.array_equal(damaged, stripe)


def test_validation(code):
    stripe = code.random_stripe(packet_size=8, seed=5)
    decoder = code.algebraic_decoder()
    with pytest.raises(ValueError):
        decoder.decode(stripe, ())
    with pytest.raises(ValueError):
        decoder.decode(stripe, (0, 1, 2, 3))
    with pytest.raises(ValueError):
        decoder.decode(stripe, (0, 1, code.cols))


def test_agrees_with_generic_decoder(code):
    """Both decoders must produce identical stripes for every triple."""
    stripe = code.random_stripe(packet_size=8, seed=6)
    algebraic = code.algebraic_decoder()
    for combo in itertools.combinations(range(code.cols), 3):
        via_alg = stripe.copy()
        algebraic.decode(via_alg, combo)
        via_gen = stripe.copy()
        code.erase_columns(via_gen, combo)
        code.decode(via_gen, combo)
        assert np.array_equal(via_alg, via_gen), combo


@given(
    data=st.data(),
    p=st.sampled_from([5, 7]),
)
@settings(max_examples=25, deadline=None)
def test_random_data_random_failures(data, p):
    code = TipCode(p)
    payload = data.draw(
        st.lists(
            st.integers(0, 255),
            min_size=code.num_data,
            max_size=code.num_data,
        )
    )
    failed = tuple(
        sorted(
            data.draw(
                st.sets(
                    st.integers(0, code.cols - 1), min_size=3, max_size=3
                )
            )
        )
    )
    packets = np.array(payload, dtype=np.uint8).reshape(code.num_data, 1)
    stripe = code.make_stripe(packets)
    damaged = stripe.copy()
    code.algebraic_decoder().decode(damaged, failed)
    assert np.array_equal(damaged, stripe)
