"""Scrub throughput and degraded-replay repair-throttle impact.

Two experiments for the fault subsystem (``repro.faults``):

* **Scrub throughput** — a full :class:`~repro.faults.Scrubber` pass
  over a populated store, clean and with injected damage (latent
  sectors + a silent bit flip), measuring stripes/s and scanned MB/s
  plus the classification outcome (everything found, fixed, nothing
  unfixable).
* **Repair throttle sweep** — the same faulty trace replay (one
  fail-stop mid-trace, online :class:`~repro.faults.RepairController`)
  at two-plus ``max_chunks_per_tick`` settings. A tighter throttle
  spreads the rebuild over more ticks, so more foreground requests are
  served degraded and the measured chunk reads rise; the final device
  image must nonetheless be byte-identical across throttles and to the
  fault-free replay.

Results land in ``results/bench_scrub.txt`` and ``BENCH_scrub.json``
(scrub stripes/s + MB/s, and per-throttle replay time / chunk I/O).
Run ``python benchmarks/bench_scrub.py --smoke`` for the tiny CI
configuration (same assertions, reduced sizes).
"""

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from _common import emit, format_table
from repro.codes import make_code
from repro.faults import FaultPlan, RepairController, Scrubber
from repro.raid import BlockDevice
from repro.store import ArrayStore
from repro.traces import generate_trace

N = 8
CHUNK = int(os.environ.get("REPRO_BENCH_SCRUB_CHUNK", "4096"))
STRIPES = int(os.environ.get("REPRO_BENCH_SCRUB_STRIPES", "64"))
REQUESTS = int(os.environ.get("REPRO_BENCH_SCRUB_REQUESTS", "400"))
THROTTLES = (64, 1024)

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_scrub.json"


def _merge_json(key, value):
    payload = {}
    if JSON_PATH.exists():
        payload = json.loads(JSON_PATH.read_text())
    payload.setdefault(
        "config",
        {"code": "tip", "n": N, "stripes": STRIPES, "chunk_bytes": CHUNK},
    )
    payload[key] = value
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _populate(store):
    pattern = (
        np.arange(store.capacity_bytes, dtype=np.int64) % 251
    ).astype(np.uint8)
    store.write_bytes(0, pattern)
    return pattern


def _timed_scrub(store, batch=8):
    scrubber = Scrubber(store, batch_stripes=batch)
    start = time.perf_counter()
    report = scrubber.run()
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_scrub_throughput():
    code = make_code("tip", N)
    rows = []
    result = {}
    with tempfile.TemporaryDirectory(prefix="bench-scrub-") as tmpdir:
        with ArrayStore(
            code, tmpdir, stripes=STRIPES, chunk_bytes=CHUNK
        ) as store:
            _populate(store)
            for label, plan in (
                ("clean", None),
                (
                    "faulty",
                    FaultPlan(seed=5)
                    .latent(disk=1, rate=0.02)
                    .bit_flip(disk=3, lba=7),
                ),
            ):
                store.set_fault_plan(plan)
                report, elapsed = _timed_scrub(store)
                store.set_fault_plan(None)
                scanned_mb = report.io.chunks_read * CHUNK / (1 << 20)
                stripes_s = report.stripes_scanned / elapsed
                entry = {
                    "stripes_scanned": report.stripes_scanned,
                    "errors_found": report.errors_found,
                    "errors_fixed": report.errors_fixed,
                    "unfixable": report.unfixable,
                    "seconds": round(elapsed, 4),
                    "stripes_per_s": round(stripes_s, 1),
                    "scan_mb_per_s": round(scanned_mb / elapsed, 1),
                }
                fraction = report.detection_fraction()
                if fraction is not None:
                    entry["detection_fraction"] = round(fraction, 3)
                result[label] = entry
                rows.append([
                    label, report.stripes_scanned, report.errors_found,
                    report.errors_fixed, report.unfixable,
                    f"{stripes_s:.0f}", f"{scanned_mb / elapsed:.1f}",
                ])
                assert report.unfixable == 0, label
                if label == "faulty":
                    assert report.errors_found >= 1
                    assert report.errors_fixed == report.errors_found
            # Repairs restored the stripes, not just silenced errors.
            assert store.scrub() == []
    emit(
        "bench_scrub",
        [
            f"code=tip n={N} stripes={STRIPES} chunk={CHUNK}",
            *format_table(
                ["pass", "stripes", "errors", "fixed", "unfixable",
                 "stripes/s", "MB/s"],
                rows,
            ),
        ],
    )
    _merge_json("scrub", result)


def _faulty_replay(trace, throttle):
    code = make_code("tip", N)
    plan = FaultPlan(seed=11).fail_stop(disk=2, at_op=40)
    with tempfile.TemporaryDirectory(prefix="bench-scrub-") as tmpdir:
        with ArrayStore(
            code, tmpdir, stripes=STRIPES, chunk_bytes=CHUNK,
            fault_plan=plan,
        ) as store:
            repair = RepairController(store, max_chunks_per_tick=throttle)
            device = BlockDevice(store)
            start = time.perf_counter()
            result = device.replay(trace, repair=repair, scrub_every=10)
            elapsed = time.perf_counter() - start
            assert repair.stats.fail_stops_handled == 1
            assert not store.failed
            store.set_fault_plan(None)
            assert store.scrub() == []
            image = store.read_bytes(0, store.capacity_bytes).copy()
    return result, repair.stats, elapsed, image


def _clean_replay(trace):
    code = make_code("tip", N)
    with tempfile.TemporaryDirectory(prefix="bench-scrub-") as tmpdir:
        with ArrayStore(
            code, tmpdir, stripes=STRIPES, chunk_bytes=CHUNK
        ) as store:
            BlockDevice(store).replay(trace)
            return store.read_bytes(0, store.capacity_bytes).copy()


def test_degraded_replay_throttle_impact():
    """Tighter repair throttle -> longer degraded window -> more chunk
    reads; contents identical at every setting."""
    trace = generate_trace("src2_0", requests=REQUESTS, seed=42)
    reference = _clean_replay(trace)
    rows = []
    sweep = {}
    reads_by_throttle = []
    for throttle in THROTTLES:
        result, stats, elapsed, image = _faulty_replay(trace, throttle)
        assert np.array_equal(
            np.asarray(image), np.asarray(reference)
        ), throttle
        reads = result.io.chunks_read
        reads_by_throttle.append(reads)
        rows.append([
            throttle, f"{elapsed:.3f}", stats.stripes_rebuilt,
            reads, result.retried_requests,
        ])
        sweep[str(throttle)] = {
            "seconds": round(elapsed, 4),
            "stripes_rebuilt": stats.stripes_rebuilt,
            "chunk_reads": reads,
            "rebuild_chunk_ios": stats.rebuild_io.total_chunks,
            "requests_retried": result.retried_requests,
        }
    # The tightest throttle keeps the array degraded longest, so its
    # measured reads (reconstruction fan-in) can never drop below the
    # loosest setting's.
    assert reads_by_throttle[0] >= reads_by_throttle[-1], reads_by_throttle
    emit(
        "bench_scrub_throttle",
        [
            f"code=tip n={N} stripes={STRIPES} chunk={CHUNK} "
            f"requests={REQUESTS} fail_stop=disk2@op40",
            *format_table(
                ["chunks/tick", "seconds", "rebuilt", "chunk reads",
                 "retries"],
                rows,
            ),
        ],
    )
    _merge_json("degraded_replay", sweep)


def main(argv):
    """Script entry: ``--smoke`` runs the tiny CI configuration."""
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("REPRO_BENCH_SCRUB_STRIPES", "16")
        os.environ.setdefault("REPRO_BENCH_SCRUB_REQUESTS", "120")
        os.environ.setdefault("REPRO_BENCH_SCRUB_CHUNK", "1024")
    return pytest.main([__file__, "-q"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
