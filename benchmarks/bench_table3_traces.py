"""Table III: statistics of the evaluation traces.

Regenerates the summary table from the synthetic trace generators and
asserts each workload's measured IOPS / write fraction / average request
length land on the published values (the generators are calibrated, so
this is a verification that the substitution holds).
"""

import pytest
from _common import emit, format_table

from repro.traces import TABLE3_WORKLOADS, generate_trace

REQUESTS = 6000


def compute_stats():
    return {
        name: generate_trace(name, requests=REQUESTS, seed=2015).stats()
        for name in sorted(TABLE3_WORKLOADS)
    }


def test_table3_trace_statistics(benchmark):
    stats = benchmark.pedantic(compute_stats, rounds=1, iterations=1)

    rows = []
    for name in sorted(TABLE3_WORKLOADS):
        spec = TABLE3_WORKLOADS[name]
        measured = stats[name]
        rows.append(
            [
                name,
                f"{measured.iops:.2f}",
                f"{100 * measured.write_fraction:.2f}%",
                f"{measured.avg_request_kb:.2f}",
                f"(paper: {spec.iops:.2f} / {100 * spec.write_fraction:.2f}% "
                f"/ {spec.avg_request_kb:.2f})",
            ]
        )
    emit(
        "table3_trace_stats",
        format_table(
            ["trace", "IOPS", "write%", "avg req KB", "published"], rows
        ),
    )

    for name, spec in TABLE3_WORKLOADS.items():
        measured = stats[name]
        assert measured.iops == pytest.approx(spec.iops, rel=0.06), name
        assert measured.write_fraction == pytest.approx(
            spec.write_fraction, abs=0.025
        ), name
        assert measured.avg_request_kb == pytest.approx(
            spec.avg_request_kb, rel=0.12
        ), name
