"""Fig. 11: partial stripe write complexity for l = 2..5 consecutive
elements under a uniform workload.

Shape claims: TIP beats the chained/adjuster baselines (Triple-Star,
HDD1) at every l and size; for large l, Cauchy-RS's small word size makes
it competitive with TIP (the paper's own caveat for l = 5).
"""

from _common import EVAL_SIZES, FAMILIES, code_for, emit, format_table

from repro.analysis import partial_write_cost

LENGTHS = (2, 3, 4, 5)


def compute_series() -> dict[int, dict[str, dict[int, float]]]:
    return {
        length: {
            family: {
                n: partial_write_cost(code_for(family, n), length)
                for n in EVAL_SIZES
            }
            for family in FAMILIES
        }
        for length in LENGTHS
    }


def test_fig11_partial_stripe_write_complexity(benchmark):
    series = benchmark.pedantic(compute_series, rounds=1, iterations=1)

    lines: list[str] = []
    for length in LENGTHS:
        lines.append(f"l = {length}")
        rows = [
            [family]
            + [f"{series[length][family][n]:.3f}" for n in EVAL_SIZES]
            for family in FAMILIES
        ]
        lines.extend(
            format_table(["code"] + [f"n={n}" for n in EVAL_SIZES], rows)
        )
        lines.append("")
    emit("fig11_partial_stripe_write", lines)

    for length in LENGTHS:
        for n in EVAL_SIZES:
            tip = series[length]["tip"][n]
            assert tip < series[length]["triple-star"][n], (length, n)
            assert tip < series[length]["hdd1"][n], (length, n)
            # STAR's S-diagonals hurt it at moderate n (word sizes match).
            if n >= 12:
                assert tip < series[length]["star"][n], (length, n)
    # The paper's l=5 caveat: Cauchy-RS is within ~10% of TIP (or better)
    # on average across sizes, thanks to its much smaller word size.
    tip_avg = sum(series[5]["tip"][n] for n in EVAL_SIZES) / len(EVAL_SIZES)
    crs_avg = sum(series[5]["cauchy-rs"][n] for n in EVAL_SIZES) / len(
        EVAL_SIZES
    )
    assert crs_avg < tip_avg * 1.35
