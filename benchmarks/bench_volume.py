"""Foreground latency while an elastic volume migrates under it.

The volume layer's headline claim is *online* restriping: extents move
between shard sets (and code families) while foreground I/O keeps
flowing, throttled by the restriper's per-tick extent batch. This
benchmark prices that claim the same way bench_service prices lock
contention: closed-loop worker threads drive writes/reads through
:class:`repro.service.VolumeService` over disjoint regions, and we
record p50/p99 request latency plus throughput

* at steady state (no migration), and
* during a TIP → STAR restripe at three throttle levels
  (``extents_per_tick`` = 1, 4, 16 — gentler throttles hold fewer
  extent locks per tick, so foreground tail latency should stay closer
  to steady state while the migration takes longer).

Two guards keep it evidence rather than narrative: every configuration
must end byte-identical to the workload's expected image (reads routed
across the moving cursor never see stale extents), and the migrated
volume must scrub clean under its new code family. Per-shard chunk
counters aggregate with :meth:`IoCounters.merged`.

Results land in ``results/bench_volume.txt`` and ``BENCH_volume.json``.
"""

import json
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from _common import emit, format_table
from repro.service import VolumeService, percentile
from repro.store import IoCounters
from repro.volume import ShardSpec, VolumeManager

SOURCE_SPECS = [
    ShardSpec("tip", 5, stripes=8, chunk_bytes=1024),
    ShardSpec("tip", 7, stripes=6, chunk_bytes=1024),
]
TARGET_SPECS = [
    ShardSpec("star", 7, stripes=48, chunk_bytes=1024),
]
EXTENT_BYTES = 4096
THROTTLES = (1, 4, 16)
TICK_DELAY = 0.004
WORKERS = 3
SLOT = 2048
PAYLOAD = 1536
STEADY_REQUESTS = 240

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_volume.json"


def _worker(service, worker, region, stop, expected):
    """One closed-loop caller: cycle writes (and reads) over its own
    disjoint slot range until told to stop."""
    rng = np.random.default_rng(1000 + worker)
    base = worker * region
    slots = region // SLOT
    index = 0
    while not stop.is_set():
        slot = index % slots
        offset = base + slot * SLOT
        payload = rng.integers(0, 256, PAYLOAD, dtype=np.uint8)
        service.write(offset, payload)
        expected[offset] = payload
        if index % 4 == 3:
            service.read(offset, PAYLOAD)
        index += 1


def _run_workload(volume, run_migration=None, min_seconds=0.0):
    """Drive WORKERS closed-loop callers; optionally migrate meanwhile.

    Returns ``(sampled latencies_ms, elapsed_s, expected image writes,
    migration stats | None)``. With a migration, sampling stops the
    moment the restripe completes, so every sample is a
    during-migration request.
    """
    service = VolumeService(volume, workers=WORKERS)
    region = volume.volume_bytes // WORKERS
    stop = threading.Event()
    expected: dict[int, np.ndarray] = {}
    threads = [
        threading.Thread(
            target=_worker, args=(service, w, region, stop, expected)
        )
        for w in range(WORKERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    stats = None
    if run_migration is not None:
        stats = run_migration(service)
        with service._stats_lock:
            sampled = len(service.stats.latencies_ms)
    if min_seconds:
        time.sleep(min_seconds)
        with service._stats_lock:
            sampled = len(service.stats.latencies_ms)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies = service.stats.latencies_ms[:sampled]
    return service, latencies, elapsed, expected, stats


def _verify(volume, expected):
    image = volume.read_bytes(0, volume.volume_bytes)
    for offset, payload in expected.items():
        assert np.array_equal(
            image[offset : offset + payload.size], payload
        ), f"write at {offset} lost"
    assert volume.scrub() == {}


def _point(latencies, elapsed):
    return {
        "requests": len(latencies),
        "throughput_iops": round(len(latencies) / elapsed, 1),
        "p50_latency_ms": round(percentile(latencies, 0.50), 4),
        "p99_latency_ms": round(percentile(latencies, 0.99), 4),
    }


def test_volume_latency_during_restripe():
    """Steady state vs migration at three throttles; byte-equal guard."""
    rows = []
    payload = {
        "source": [spec.to_meta() for spec in SOURCE_SPECS],
        "target": [spec.to_meta() for spec in TARGET_SPECS],
        "extent_bytes": EXTENT_BYTES,
        "workers": WORKERS,
        "steady": None,
        "restripe": [],
    }

    # Steady state: same closed loop, no migration.
    with tempfile.TemporaryDirectory(prefix="bench-vol-") as tmpdir:
        volume = VolumeManager.create(
            Path(tmpdir) / "vol", SOURCE_SPECS, extent_bytes=EXTENT_BYTES
        )
        volume.write_bytes(
            0, np.zeros(volume.volume_bytes, dtype=np.uint8)
        )
        service, latencies, elapsed, expected, _ = _run_workload(
            volume, min_seconds=0.5
        )
        assert len(latencies) >= STEADY_REQUESTS // 2
        _verify(volume, expected)
        steady = _point(latencies, elapsed)
        steady["io"] = IoCounters.merged(
            shard.io for shard in volume.shards
        ).total_chunks
        payload["steady"] = steady
        service.close()
    rows.append([
        "steady", "-", steady["requests"],
        f"{steady['throughput_iops']:.0f}",
        f"{steady['p50_latency_ms']:.3f}",
        f"{steady['p99_latency_ms']:.3f}", "-",
    ])

    for throttle in THROTTLES:
        with tempfile.TemporaryDirectory(prefix="bench-vol-") as tmpdir:
            volume = VolumeManager.create(
                Path(tmpdir) / "vol", SOURCE_SPECS,
                extent_bytes=EXTENT_BYTES,
            )
            volume.write_bytes(
                0, np.zeros(volume.volume_bytes, dtype=np.uint8)
            )

            def migrate(service, throttle=throttle):
                service.start_restripe(
                    TARGET_SPECS, extents_per_tick=throttle,
                    tick_delay=TICK_DELAY,
                )
                return service.join_restripe()

            service, latencies, elapsed, expected, stats = _run_workload(
                volume, run_migration=migrate
            )
            assert stats is not None and stats.done
            assert stats.extents_copied == volume.total_extents
            assert latencies, "no foreground samples during migration"
            # The migrated volume serves the new family only.
            families = [
                s["family"] for s in volume.status().shards
            ]
            assert families == ["star"], families
            _verify(volume, expected)
            point = _point(latencies, elapsed)
            point.update(
                {
                    "extents_per_tick": throttle,
                    "ticks": stats.ticks,
                    "extents_copied": stats.extents_copied,
                    "migration_chunk_ios": stats.io.total_chunks,
                }
            )
            payload["restripe"].append(point)
            rows.append([
                "restripe", throttle, point["requests"],
                f"{point['throughput_iops']:.0f}",
                f"{point['p50_latency_ms']:.3f}",
                f"{point['p99_latency_ms']:.3f}", stats.ticks,
            ])
            service.close()

    # Gentler throttles take more ticks to move the same extents.
    ticks = [entry["ticks"] for entry in payload["restripe"]]
    assert ticks == sorted(ticks, reverse=True), ticks
    for entry in payload["restripe"]:
        assert entry["p99_latency_ms"] >= entry["p50_latency_ms"]

    emit(
        "bench_volume",
        [
            f"source=2x tip shards, target=star n=7, "
            f"extent={EXTENT_BYTES} B, {WORKERS} closed-loop workers",
            *format_table(
                ["config", "extents/tick", "requests", "req/s",
                 "p50 ms", "p99 ms", "ticks"],
                rows,
            ),
        ],
    )
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
