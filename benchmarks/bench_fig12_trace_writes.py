"""Fig. 12: average number of I/Os per write request on the four MSR
Cambridge-like workloads (chunk size 8 KB).

Workloads are the synthetic Table III substitutes (see DESIGN.md). Shape
claims: TIP has the fewest modified elements per write request at the
moderate-to-large sizes, and its relative gain grows with array size —
the paper's "with a larger array size, TIP-code achieves higher
performance gain".
"""

from _common import FAMILIES, code_for, emit, format_table

from repro.analysis import synthetic_write_cost
from repro.traces import generate_trace

WORKLOADS = ("prxy_0", "src2_0", "stg_0", "usr_0")
SIZES = (6, 8, 12, 14, 18, 20, 24)
REQUESTS = 4000
CHUNK = 8 * 1024


def compute_series() -> dict[str, dict[str, dict[int, float]]]:
    out: dict[str, dict[str, dict[int, float]]] = {}
    for workload in WORKLOADS:
        trace = generate_trace(workload, requests=REQUESTS, seed=2015)
        out[workload] = {
            family: {
                n: synthetic_write_cost(code_for(family, n), trace, CHUNK)
                for n in SIZES
            }
            for family in FAMILIES
        }
    return out


def test_fig12_synthetic_write_complexity(benchmark):
    series = benchmark.pedantic(compute_series, rounds=1, iterations=1)

    lines: list[str] = []
    for workload in WORKLOADS:
        lines.append(f"workload {workload}")
        rows = [
            [family]
            + [f"{series[workload][family][n]:.2f}" for n in SIZES]
            for family in FAMILIES
        ]
        lines.extend(format_table(["code"] + [f"n={n}" for n in SIZES], rows))
        lines.append("")
    emit("fig12_trace_write_cost", lines)

    for workload in WORKLOADS:
        data = series[workload]
        for n in SIZES:
            if n >= 8:
                tip = data["tip"][n]
                for family in FAMILIES[1:]:
                    assert tip < data[family][n], (workload, family, n)
        # The gain over the worst code grows with array size.
        gain_small = data["hdd1"][6] / data["tip"][6]
        gain_large = data["hdd1"][24] / data["tip"][24]
        assert gain_large > gain_small, workload
