"""Ablation: the Cauchy ones-minimizing row scaling of [32] (Plank & Xu).

Quantifies how much the optimization reduces Cauchy-RS's encoding XOR
count and update complexity across sizes — and shows that even optimized,
Cauchy-RS stays well above TIP's bound (the paper's Sec. II-A1 argument
that optimal Cauchy matrices "are still far from optimal" in update
complexity).
"""

from _common import code_for, emit, format_table

from repro.analysis import single_write_cost
from repro.analysis.xor_cost import encoding_xor_per_element
from repro.codes.cauchy import CauchyRSCode

SIZES = (6, 8, 12, 14, 18)


def compute():
    table = {}
    for n in SIZES:
        plain = CauchyRSCode(n, m=3, optimize=False)
        tuned = CauchyRSCode(n, m=3, optimize=True)
        table[n] = {
            "plain_xor": encoding_xor_per_element(plain),
            "tuned_xor": encoding_xor_per_element(tuned),
            "plain_write": single_write_cost(plain),
            "tuned_write": single_write_cost(tuned),
            "tip_write": single_write_cost(code_for("tip", n)),
        }
    return table


def test_ablation_cauchy_optimization(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            str(n),
            f"{row['plain_xor']:.2f}",
            f"{row['tuned_xor']:.2f}",
            f"{row['plain_write']:.2f}",
            f"{row['tuned_write']:.2f}",
            f"{row['tip_write']:.2f}",
        ]
        for n, row in table.items()
    ]
    emit(
        "ablation_cauchy_ones",
        format_table(
            ["n", "enc XOR plain", "enc XOR tuned", "write plain",
             "write tuned", "write TIP"],
            rows,
        ),
    )
    for n, row in table.items():
        # The optimization must not hurt either metric...
        assert row["tuned_xor"] <= row["plain_xor"] + 1e-9, n
        assert row["tuned_write"] <= row["plain_write"] + 0.35, n
        # ...and must not close the gap to TIP (the paper's point).
        assert row["tuned_write"] > row["tip_write"] + 0.5, n
    # It must actually help somewhere.
    assert any(
        row["tuned_xor"] < row["plain_xor"] * 0.97 for row in table.values()
    )
