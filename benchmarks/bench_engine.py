"""Execution-engine ablation: interpreted vs compiled vs multicore.

Not a figure of the paper — this tracks the *engine* itself: the same
XOR schedules executed by the interpreted reference
(``XorSchedule.apply``), the compiled zero-allocation plan
(``StripeCodec.encode_into`` / ``decode_into``), and the multicore
fan-out (``repro.codec.parallel``) on the Fig. 14 geometry (tip, n=12,
4 KiB packets, 32 MiB region).

Methodology — two things make the paired ratio reproducible where
independently timed single passes swing by 40% on a noisy host:

1. Every engine is timed over the *same* warm buffers in alternating
   round-robin passes, and each engine keeps its best round. Host noise
   hits all engines equally instead of biasing whichever ran last.
2. The measurement runs in a **fresh subprocess**. The interpreted
   engine allocates its outputs and temporaries on every pass, so its
   cost depends on allocator state: in a fresh process glibc serves the
   large buffers by mmap and every pass pays the page faults, while
   after enough allocation churn (e.g. a long pytest run) it adaptively
   raises its mmap threshold and recycles arenas, hiding that cost.
   The compiled engine preallocates everything once and is immune
   either way — that immunity is the point of the design, and the
   fresh-process protocol is what a short-lived encode tool sees.

Byte-level equivalence of the engines is asserted here on the benchmark
geometry (the exhaustive check lives in tests/test_compiled_engine.py);
throughputs land in ``results/`` and, when ``REPRO_BENCH_JSON`` is set,
in the JSON file the CI smoke job publishes, so the perf trajectory is
tracked from this PR on.
"""

import itertools
import json
import os
import random
import subprocess
import sys
import time

import numpy as np

N = 12
PACKET = 4096
ROUNDS = 7
WORKER_COUNTS = (2, 4)
DECODE_PATTERNS = 4

#: Acceptance bar for the compiled engine (single-threaded encode).
MIN_ENCODE_SPEEDUP = 1.5

#: Full-size decode bar: the fused two-stage plan (sparse syndromes +
#: back-substitution in one blocked sweep, run-fused wide-word kernels)
#: must clearly beat interpreted dense decoding, like encode does.
MIN_DECODE_SPEEDUP = 1.5

#: Paired smoke guards — asserted at *every* size, so CI's small-data
#: smoke run fails on a real slowdown instead of deferring to the rare
#: full-size run. The decode guard is exact (compiled >= interpreted
#: even at smoke size: fewer XORs and no per-pass allocation leave no
#: excuse); the fan-out guard stays loose to catch the "5x slower than
#: serial" class of regression, not percent-level drift.
MIN_AUTO_PARALLEL_RATIO = 0.5
MIN_DECODE_SMOKE_RATIO = 1.0

#: At full size, auto fan-out must match serial compiled: on hosts where
#: the pool cannot win, auto *is* the serial path plus one threshold
#: check, and where it engages it must clear the measured margin.
MIN_AUTO_PARALLEL_FULL = 0.9

#: Re-acquiring a decode plan after decoder-LRU eviction must be far
#: cheaper than solving from scratch (the code-level plan caches).
MIN_PLAN_CACHE_SPEEDUP = 3.0


def _best_rounds(passes, rounds=ROUNDS):
    """Per-engine best wall time over ``rounds`` round-robin rounds."""
    for do_pass in passes.values():  # warm plans, pools, page cache
        do_pass()
    best = dict.fromkeys(passes, float("inf"))
    for _ in range(rounds):
        for name, do_pass in passes.items():
            start = time.perf_counter()
            do_pass()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def _roofline():
    """Measured host ceilings: streaming memcpy and single-stream XOR.

    ``xor_gib_s`` is the roofline for XOR-bound kernels (bytes of
    destination per second of one in-place ``np.bitwise_xor`` far larger
    than any cache); a plan streaming every source from DRAM cannot beat
    it per memory pass. The same measurements feed the engine's tile
    calibration (:mod:`repro.bitmatrix.tuning`).
    """
    from repro.bitmatrix.tuning import measure_memcpy_gib_s, measure_xor_gib_s

    return {
        "memcpy_gib_s": measure_memcpy_gib_s(),
        "xor_gib_s": measure_xor_gib_s(),
    }


def _encode_probe(data_bytes):
    """Paired encode timings; returns best seconds per engine."""
    from repro.codec import StripeCodec, parallel_encode_into, shared_empty
    from repro.codes import make_code

    code = make_code("tip", N)
    codec = StripeCodec(code, PACKET)
    stripes = -(-data_bytes // codec.data_bytes_per_stripe)
    width = stripes * PACKET
    rng = np.random.default_rng(1)
    # Pool-owned buffers: the forced/auto fan-out passes run zero-copy
    # (workers get segment offsets), and the serial engines see the very
    # same memory, so the paired comparison is apples to apples.
    data = shared_empty((code.num_data, width), role="probe-enc-in")
    data[...] = rng.integers(
        0, 256, size=(code.num_data, width), dtype=np.uint8
    )
    out = shared_empty((code.num_parity, width), role="probe-enc-out")
    out.fill(0)
    packets = [data[i] for i in range(code.num_data)]

    passes = {
        "interpreted": lambda: codec.encode_packets(packets),
        "compiled": lambda: codec.encode_into(data, out),
        # Auto fan-out: serial below the measured per-worker overhead
        # threshold (and always on 1-CPU hosts), pooled fan-out above.
        "parallel_auto": lambda: parallel_encode_into(
            codec, data, out, workers=None
        ),
    }
    for workers in WORKER_COUNTS:
        passes[f"parallel{workers}"] = (
            lambda workers=workers: parallel_encode_into(
                codec, data, out, workers=workers
            )
        )
    best = _best_rounds(passes)
    return {
        "payload_bytes": code.num_data * width,
        "xors_per_element": codec.encode_xors / code.num_data,
        # Full-width row sweeps the compiled plan performs per data row:
        # converts payload GiB/s into achieved XOR-stream GiB/s.
        "passes_per_data_row": codec.encode_plan.memory_passes
        / code.num_data,
        "seconds": best,
        "roofline": _roofline(),
    }


def _decode_probe(data_bytes):
    """Paired decode timings over sampled failure patterns."""
    from repro.codec import StripeCodec, parallel_decode_into, shared_empty
    from repro.codes import make_code

    code = make_code("tip", N)
    codec = StripeCodec(code, PACKET)
    stripes = -(-data_bytes // codec.data_bytes_per_stripe)
    width = stripes * PACKET
    rng_np = np.random.default_rng(3)
    combos = random.Random(3).sample(
        list(itertools.combinations(range(code.cols), code.faults)),
        DECODE_PATTERNS,
    )
    engines = (
        "interpreted",
        "compiled",
        "parallel_auto",
        *(f"parallel{workers}" for workers in WORKER_COUNTS),
    )
    total = dict.fromkeys(engines, 0.0)
    total_passes = 0
    for combo in combos:
        decoder = code.decoder_for(combo)
        total_passes += decoder.compiled_plan().memory_passes
        known = shared_empty(
            (len(decoder.plan.known_positions), width), role="probe-dec-in"
        )
        known[...] = rng_np.integers(
            0, 256, size=known.shape, dtype=np.uint8
        )
        out = shared_empty(
            (len(decoder.plan.unknown_positions), width),
            role="probe-dec-out",
        )
        out.fill(0)
        packets = [known[i] for i in range(known.shape[0])]
        passes = {
            "interpreted": lambda: decoder.plan.schedule.apply(packets),
            "compiled": lambda: codec.decode_into(combo, known, out),
            "parallel_auto": lambda: parallel_decode_into(
                codec, combo, known, out, workers=None
            ),
        }
        for workers in WORKER_COUNTS:
            passes[f"parallel{workers}"] = (
                lambda workers=workers: parallel_decode_into(
                    codec, combo, known, out, workers=workers
                )
            )
        best = _best_rounds(passes)
        for name, seconds in best.items():
            total[name] += seconds
    count = len(combos)
    return {
        "payload_bytes": code.num_data * width * count,
        # Dense-schedule XORs: the paper's decode cost metric (what the
        # interpreted engine executes).
        "xors_per_element": sum(
            code.decoder_for(c).xor_count for c in combos
        )
        / (code.num_data * count),
        # Fused two-stage XORs: what the compiled engine executes.
        "fused_xors_per_element": sum(
            code.decoder_for(c).fused_xor_count for c in combos
        )
        / (code.num_data * count),
        "passes_per_data_row": total_passes / (code.num_data * count),
        "seconds": total,
        "plan_seconds": _plan_probe(combos),
        "roofline": _roofline(),
    }


def _plan_probe(combos, rounds=3):
    """Decode-plan acquisition cost: cold vs warm vs after LRU eviction.

    ``cold`` solves the recovery system and lowers the schedule from
    scratch on a fresh code instance. ``warm`` hits the decoder LRU.
    ``evicted`` is the satellite case: a decoder cache of 1 forces every
    ``decoder_for`` to re-create the Decoder, but the code-level
    recovery/compiled plan caches hand back the solved artifacts — this
    used to cost the same as cold.
    """
    from repro.codes import make_code

    def best_over(prepare, body):
        best = float("inf")
        for _ in range(rounds):
            state = prepare()
            start = time.perf_counter()
            body(state)
            best = min(best, time.perf_counter() - start)
        return best

    cold = best_over(
        lambda: [make_code("tip", N) for _ in combos],
        lambda codes: [
            c.decoder_for(combo).compiled_plan()
            for c, combo in zip(codes, combos)
        ],
    )

    warm_code = make_code("tip", N)
    for combo in combos:
        warm_code.decoder_for(combo).compiled_plan()
    warm = best_over(
        lambda: warm_code,
        lambda c: [c.decoder_for(combo).compiled_plan() for combo in combos],
    )

    evicted_code = make_code("tip", N)
    evicted_code.decoder_cache_size = 1
    for combo in combos:
        evicted_code.decoder_for(combo).compiled_plan()
    evicted = best_over(
        lambda: evicted_code,
        lambda c: [c.decoder_for(combo).compiled_plan() for combo in combos],
    )
    return {"cold": cold, "warm": warm, "evicted": evicted}


def _fresh_probe(kind, data_bytes):
    """Run a probe in a fresh interpreter so allocator state is fixed.

    Inherits the parent's environment and working directory, so a
    relative ``PYTHONPATH=src`` keeps resolving; the probe itself only
    imports ``repro`` and numpy.
    """
    result = subprocess.run(
        [sys.executable, os.path.abspath(__file__), kind, str(data_bytes)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout.splitlines()[-1])


def _speeds(probe):
    return {
        name: probe["payload_bytes"] / seconds / (1 << 30)
        for name, seconds in probe["seconds"].items()
    }


def _roofline_fields(probe, speed):
    """Roofline record: measured ceilings + the compiled engine's share.

    ``achieved_fraction`` rescales the compiled payload throughput into
    XOR-stream bandwidth (payload GiB/s x memory passes per data row)
    and divides by the measured streaming-XOR ceiling. It can exceed 1.0
    when the tiled sweep keeps hot rows in cache — the ceiling is
    deliberately the *uncached* stream rate.
    """
    roofline = probe["roofline"]
    stream = speed["compiled"] * probe["passes_per_data_row"]
    return {
        "roofline_memcpy_gib_s": round(roofline["memcpy_gib_s"], 3),
        "roofline_gib_s": round(roofline["xor_gib_s"], 3),
        "passes_per_data_row": round(probe["passes_per_data_row"], 4),
        "roofline_achieved_fraction": round(
            stream / roofline["xor_gib_s"], 3
        ),
    }


if __name__ == "__main__":
    _kind, _bytes = sys.argv[1], int(sys.argv[2])
    _probe = _encode_probe if _kind == "encode" else _decode_probe
    print(json.dumps(_probe(_bytes)))
    sys.exit(0)


from _common import emit, format_table, record_json, scaled_bytes  # noqa: E402

DATA_BYTES = scaled_bytes(32 << 20)

#: The perf-regression assertions only run at full benchmark size: on
#: the tiny CI smoke size the fixed per-call overheads dominate and the
#: ratios are meaningless.
FULL_SIZE = DATA_BYTES >= 16 << 20


def test_engine_encode_ablation():
    probe = _fresh_probe("encode", DATA_BYTES)
    speed = _speeds(probe)
    speedup = speed["compiled"] / speed["interpreted"]
    roofline = _roofline_fields(probe, speed)
    rows = [
        [
            name,
            name.removeprefix("parallel") if "parallel" in name else 1,
            f"{value:.3f}",
            f"{value / speed['interpreted']:.2f}",
        ]
        for name, value in speed.items()
    ]
    emit(
        "engine_encode_ablation",
        [
            f"code=tip n={N} data_mb={DATA_BYTES >> 20} "
            f"host_cpus={os.cpu_count()}",
            *format_table(
                ["engine", "workers", "GiB/s", "vs interpreted"], rows
            ),
            f"roofline_gib_s={roofline['roofline_gib_s']:.2f} "
            f"achieved={roofline['roofline_achieved_fraction']:.2f}",
        ],
    )
    record_json(
        "engine_encode_ablation",
        {
            "code": "tip",
            "n": N,
            "data_bytes": DATA_BYTES,
            "host_cpus": os.cpu_count(),
            "xors_per_element": round(probe["xors_per_element"], 4),
            "compiled_speedup": round(speedup, 3),
            **{
                f"{name}_gib_s": round(value, 4)
                for name, value in speed.items()
            },
            **roofline,
        },
    )
    assert speed["compiled"] > 0
    # Paired guard at every size: auto fan-out must never fall behind
    # the serial compiled engine the way forced fan-out once did.
    assert (
        speed["parallel_auto"] >= MIN_AUTO_PARALLEL_RATIO * speed["compiled"]
    ), speed
    if FULL_SIZE:
        assert speedup >= MIN_ENCODE_SPEEDUP, speed
        assert (
            speed["parallel_auto"]
            >= MIN_AUTO_PARALLEL_FULL * speed["compiled"]
        ), speed


def test_engine_decode_ablation():
    probe = _fresh_probe("decode", DATA_BYTES)
    speed = _speeds(probe)
    speedup = speed["compiled"] / speed["interpreted"]
    plan = probe["plan_seconds"]
    plan_cache_speedup = plan["cold"] / max(plan["evicted"], 1e-9)
    roofline = _roofline_fields(probe, speed)
    rows = [
        [
            name,
            name.removeprefix("parallel") if "parallel" in name else 1,
            f"{value:.3f}",
            f"{value / speed['interpreted']:.2f}",
        ]
        for name, value in speed.items()
    ]
    emit(
        "engine_decode_ablation",
        [
            f"code=tip n={N} data_mb={DATA_BYTES >> 20} "
            f"patterns={DECODE_PATTERNS} host_cpus={os.cpu_count()}",
            *format_table(
                ["engine", "workers", "GiB/s", "vs interpreted"], rows
            ),
            f"xors/elem dense={probe['xors_per_element']:.2f} "
            f"fused={probe['fused_xors_per_element']:.2f}",
            f"roofline_gib_s={roofline['roofline_gib_s']:.2f} "
            f"achieved={roofline['roofline_achieved_fraction']:.2f}",
            f"plan_cold_ms={plan['cold'] * 1e3:.2f}",
            f"plan_warm_us={plan['warm'] * 1e6:.1f}",
            f"plan_evicted_us={plan['evicted'] * 1e6:.1f}",
            f"plan_cache_speedup={plan_cache_speedup:.0f}",
        ],
    )
    record_json(
        "engine_decode_ablation",
        {
            "code": "tip",
            "n": N,
            "data_bytes": DATA_BYTES,
            "host_cpus": os.cpu_count(),
            "xors_per_element": round(probe["xors_per_element"], 4),
            "fused_xors_per_element": round(
                probe["fused_xors_per_element"], 4
            ),
            "compiled_speedup": round(speedup, 3),
            **{
                f"{name}_gib_s": round(value, 4)
                for name, value in speed.items()
            },
            **roofline,
            "plan_cold_ms": round(plan["cold"] * 1e3, 3),
            "plan_warm_us": round(plan["warm"] * 1e6, 1),
            "plan_evicted_us": round(plan["evicted"] * 1e6, 1),
            "plan_cache_speedup": round(plan_cache_speedup, 1),
        },
    )
    assert speed["compiled"] > 0
    # Paired guards at every size: the compiled fused path must never
    # fall behind the interpreted dense engine (it executes fewer XORs
    # and allocates nothing per pass), auto fan-out must never fall far
    # behind serial compiled, and re-acquiring a decode plan after
    # decoder-LRU eviction must skip the algebra entirely.
    assert speed["compiled"] >= MIN_DECODE_SMOKE_RATIO * speed["interpreted"], (
        speed
    )
    assert (
        speed["parallel_auto"] >= MIN_AUTO_PARALLEL_RATIO * speed["compiled"]
    ), speed
    assert plan_cache_speedup >= MIN_PLAN_CACHE_SPEEDUP, plan
    if FULL_SIZE:
        assert speedup >= MIN_DECODE_SPEEDUP, speed
        assert (
            speed["parallel_auto"]
            >= MIN_AUTO_PARALLEL_FULL * speed["compiled"]
        ), speed


def test_engine_paths_byte_identical():
    """All engines produce the same bytes on the bench geometry."""
    from repro.codec import (
        StripeCodec,
        parallel_decode_into,
        parallel_encode_into,
    )
    from repro.codes import make_code

    code = make_code("tip", N)
    codec = StripeCodec(code, packet_size=PACKET)
    rng = np.random.default_rng(5)
    width = PACKET * 8
    data = rng.integers(0, 256, size=(code.num_data, width), dtype=np.uint8)
    reference = codec.encode_packets([data[i] for i in range(len(data))])
    compiled = codec.encode_into(data)
    assert all(
        np.array_equal(compiled[i], reference[i])
        for i in range(code.num_parity)
    )
    for workers in (None, *WORKER_COUNTS):
        fanned = parallel_encode_into(codec, data, workers=workers)
        assert np.array_equal(fanned, compiled), workers

    combo = (0, 1, 2)
    decoder = code.decoder_for(combo)
    known = rng.integers(
        0,
        256,
        size=(len(decoder.plan.known_positions), width),
        dtype=np.uint8,
    )
    single = codec.decode_into(combo, known)
    # The compiled engine executes the fused two-stage plan; it must be
    # byte-identical to the interpreted dense schedule it replaced.
    dense = decoder.plan.schedule.apply(
        [known[i] for i in range(known.shape[0])]
    )
    assert all(
        np.array_equal(single[i], dense[i]) for i in range(len(dense))
    )
    for workers in WORKER_COUNTS:
        fanned = parallel_decode_into(codec, combo, known, workers=workers)
        assert np.array_equal(fanned, single), workers
