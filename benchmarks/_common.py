"""Shared configuration for the evaluation benchmarks (Sec. VI).

Every benchmark regenerates one table or figure of the paper: it computes
the same rows/series, prints them, writes them under ``results/``, and
asserts the headline *shape* claims (who wins, monotonicity, approximate
factors). Absolute values differ from the paper's testbed — see
EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.codes import make_code
from repro.codes.base import ArrayCode

#: Env var scaling the throughput benchmarks' data region (in MiB) so CI
#: smoke jobs can run them on a tiny size; unset = each benchmark's
#: full-size default.
DATA_MB_ENV = "REPRO_BENCH_DATA_MB"

#: Env var naming a JSON file that accumulates machine-readable metrics
#: (throughput, XOR counts) alongside the results/ text files; unset =
#: no JSON output.
BENCH_JSON_ENV = "REPRO_BENCH_JSON"

#: Array sizes of Tables IV-V (all chosen so n-1 is prime, for HDD1).
EVAL_SIZES = (6, 8, 12, 14, 18, 20, 24)

#: Smaller size set for the expensive simulation benchmarks (Fig. 13 uses
#: exactly these in the paper).
SIM_SIZES = (8, 12, 14)

#: Display order matching the paper's legends.
FAMILIES = ("tip", "triple-star", "star", "cauchy-rs", "hdd1")

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def code_for(family: str, n: int) -> ArrayCode:
    """Instantiate the code the paper's evaluation would use at size n."""
    return make_code(family, n)


def write_result(name: str, lines: list[str]) -> Path:
    """Persist one experiment's regenerated rows under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")
    return path


def format_table(header: list[str], rows: list[list[str]]) -> list[str]:
    """Fixed-width table rendering for results files and stdout."""
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(header, *rows)
    ]
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def emit(name: str, lines: list[str]) -> None:
    """Print and persist an experiment's output."""
    banner = f"=== {name} ==="
    print()
    print(banner)
    for line in lines:
        print(line)
    write_result(name, [banner, *lines])


def scaled_bytes(default_bytes: int) -> int:
    """The benchmark data-region size, honouring ``REPRO_BENCH_DATA_MB``."""
    override = os.environ.get(DATA_MB_ENV)
    if not override:
        return default_bytes
    return max(int(float(override) * (1 << 20)), 1 << 16)


def record_json(name: str, payload: dict) -> None:
    """Merge one experiment's metrics into the ``REPRO_BENCH_JSON`` file.

    Entries accumulate across benchmark files within a run (the file is
    read-modify-written per call), keyed by experiment name — this is how
    the CI smoke job builds ``BENCH_engine.json`` tracking the engine's
    perf trajectory.
    """
    path = os.environ.get(BENCH_JSON_ENV)
    if not path:
        return
    target = Path(path)
    existing = (
        json.loads(target.read_text()) if target.exists() else {}
    )
    existing[name] = payload
    target.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n"
    )
