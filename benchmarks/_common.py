"""Shared configuration for the evaluation benchmarks (Sec. VI).

Every benchmark regenerates one table or figure of the paper: it computes
the same rows/series, prints them, writes them under ``results/``, and
asserts the headline *shape* claims (who wins, monotonicity, approximate
factors). Absolute values differ from the paper's testbed — see
EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

from pathlib import Path

from repro.codes import make_code
from repro.codes.base import ArrayCode

#: Array sizes of Tables IV-V (all chosen so n-1 is prime, for HDD1).
EVAL_SIZES = (6, 8, 12, 14, 18, 20, 24)

#: Smaller size set for the expensive simulation benchmarks (Fig. 13 uses
#: exactly these in the paper).
SIM_SIZES = (8, 12, 14)

#: Display order matching the paper's legends.
FAMILIES = ("tip", "triple-star", "star", "cauchy-rs", "hdd1")

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def code_for(family: str, n: int) -> ArrayCode:
    """Instantiate the code the paper's evaluation would use at size n."""
    return make_code(family, n)


def write_result(name: str, lines: list[str]) -> Path:
    """Persist one experiment's regenerated rows under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")
    return path


def format_table(header: list[str], rows: list[list[str]]) -> list[str]:
    """Fixed-width table rendering for results files and stdout."""
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(header, *rows)
    ]
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def emit(name: str, lines: list[str]) -> None:
    """Print and persist an experiment's output."""
    banner = f"=== {name} ==="
    print()
    print(banner)
    for line in lines:
        print(line)
    write_result(name, [banner, *lines])
