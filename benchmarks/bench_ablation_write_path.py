"""Ablation: read-modify-write vs. reconstruct-write vs. auto selection.

The paper's response-time evaluation models RMW throughout; this ablation
quantifies what the classic large-write optimization would add on top of
TIP, and confirms the auto strategy never issues more element I/Os.
"""

from _common import code_for, emit, format_table

from repro.disksim import RaidController, simulate_trace, ArraySimulator
from repro.traces import TraceRequest, generate_trace

CHUNK = 8 * 1024
STRATEGIES = ("rmw", "rcw", "auto")


def io_counts_by_run_length(n: int = 12):
    """Element I/Os per strategy as the written run grows."""
    code = code_for("tip", n)
    controllers = {
        s: RaidController(code, CHUNK, write_strategy=s) for s in STRATEGIES
    }
    table = {}
    for chunks in (1, 2, 4, 8, 16, code.num_data - 1):
        request = TraceRequest(0.0, 0, chunks * CHUNK, True)
        table[chunks] = {
            s: controllers[s].plan(request).total_ios for s in STRATEGIES
        }
    return table


def response_times(n: int = 12):
    trace = generate_trace("usr_0", requests=900, seed=13).stretched(4.0)
    code = code_for("tip", n)
    return {
        s: ArraySimulator(code, CHUNK, write_strategy=s, seed=2)
        .run(trace)
        .mean_response_ms
        for s in STRATEGIES
    }


def test_ablation_write_path_io_counts(benchmark):
    table = benchmark.pedantic(io_counts_by_run_length, rounds=1, iterations=1)
    rows = [
        [str(chunks)] + [str(table[chunks][s]) for s in STRATEGIES]
        for chunks in table
    ]
    emit(
        "ablation_write_path_ios",
        format_table(["run (chunks)"] + list(STRATEGIES), rows),
    )
    for chunks, counts in table.items():
        assert counts["auto"] == min(counts.values()), chunks
    # Small writes: RMW wins; near-full-stripe: RCW wins.
    first = min(table)
    last = max(table)
    assert table[first]["rmw"] <= table[first]["rcw"]
    assert table[last]["rcw"] < table[last]["rmw"]


def test_ablation_write_path_response_time(benchmark):
    times = benchmark.pedantic(response_times, rounds=1, iterations=1)
    rows = [[s, f"{times[s]:.2f}"] for s in STRATEGIES]
    emit(
        "ablation_write_path_latency",
        format_table(["strategy", "mean response ms"], rows),
    )
    # Auto must not be slower than always-RMW beyond noise.
    assert times["auto"] <= times["rmw"] * 1.05
