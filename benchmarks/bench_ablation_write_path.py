"""Ablation: read-modify-write vs. reconstruct-write vs. auto selection.

The paper's response-time evaluation models RMW throughout; this ablation
quantifies what the classic large-write optimization would add on top of
TIP, and confirms the auto strategy never issues more element I/Os.

It also measures the same trade-off *end to end* on the file-backed
``ArrayStore``: the delta small-write fast path against the naive
full-stripe path, in both chunk I/Os (metered by the store's counters)
and wall-clock time.
"""

import tempfile
import time

import numpy as np
from _common import code_for, emit, format_table

from repro.disksim import ArraySimulator, RaidController
from repro.store import ArrayStore
from repro.traces import TraceRequest, generate_trace

CHUNK = 8 * 1024
STRATEGIES = ("rmw", "rcw", "auto")
STORE_MODES = ("delta", "stripe")


def io_counts_by_run_length(n: int = 12):
    """Element I/Os per strategy as the written run grows."""
    code = code_for("tip", n)
    controllers = {
        s: RaidController(code, CHUNK, write_strategy=s) for s in STRATEGIES
    }
    table = {}
    for chunks in (1, 2, 4, 8, 16, code.num_data - 1):
        request = TraceRequest(0.0, 0, chunks * CHUNK, True)
        table[chunks] = {
            s: controllers[s].plan(request).total_ios for s in STRATEGIES
        }
    return table


def response_times(n: int = 12):
    trace = generate_trace("usr_0", requests=900, seed=13).stretched(4.0)
    code = code_for("tip", n)
    return {
        s: ArraySimulator(code, CHUNK, write_strategy=s, seed=2)
        .run(trace)
        .mean_response_ms
        for s in STRATEGIES
    }


def test_ablation_write_path_io_counts(benchmark):
    table = benchmark.pedantic(io_counts_by_run_length, rounds=1, iterations=1)
    rows = [
        [str(chunks)] + [str(table[chunks][s]) for s in STRATEGIES]
        for chunks in table
    ]
    emit(
        "ablation_write_path_ios",
        format_table(["run (chunks)"] + list(STRATEGIES), rows),
    )
    for chunks, counts in table.items():
        assert counts["auto"] == min(counts.values()), chunks
    # Small writes: RMW wins; near-full-stripe: RCW wins.
    first = min(table)
    last = max(table)
    assert table[first]["rmw"] <= table[first]["rcw"]
    assert table[last]["rcw"] < table[last]["rmw"]


def store_delta_vs_full(
    n: int = 8,
    stripes: int = 4,
    chunk_bytes: int = 4096,
    writes: int = 200,
):
    """Single-chunk writes through the real file-backed store."""
    results = {}
    rng = np.random.default_rng(7)
    for mode in STORE_MODES:
        with tempfile.TemporaryDirectory(prefix=f"store-{mode}-") as tmp:
            store = ArrayStore(
                code_for("tip", n),
                tmp,
                stripes=stripes,
                chunk_bytes=chunk_bytes,
                write_mode=mode,
            )
            store.write_chunks(
                0,
                rng.integers(
                    0,
                    256,
                    size=(store.capacity_chunks, chunk_bytes),
                    dtype=np.uint8,
                ),
            )
            payloads = rng.integers(
                0, 256, size=(writes, 1, chunk_bytes), dtype=np.uint8
            )
            targets = rng.integers(0, store.capacity_chunks, size=writes)
            before = store.io.snapshot()
            start = time.perf_counter()
            for target, payload in zip(targets, payloads):
                store.write_chunks(int(target), payload)
            elapsed = time.perf_counter() - start
            delta_io = store.io - before
            assert store.scrub() == []
            results[mode] = {
                "seconds": elapsed,
                "chunk_ios": delta_io.total_chunks,
                "parity_writes": delta_io.parity_chunks_written,
                "us_per_write": elapsed / writes * 1e6,
            }
    return results


def test_ablation_store_delta_path(benchmark):
    """The delta fast path must beat full-stripe on single-chunk writes,
    in both chunk I/Os and wall-clock time."""
    results = benchmark.pedantic(store_delta_vs_full, rounds=1, iterations=1)
    rows = [
        [
            mode,
            str(results[mode]["chunk_ios"]),
            str(results[mode]["parity_writes"]),
            f"{results[mode]['us_per_write']:.0f}",
        ]
        for mode in STORE_MODES
    ]
    emit(
        "ablation_store_delta_path",
        format_table(
            ["mode", "chunk I/Os", "parity chunk writes", "us/write"], rows
        ),
    )
    delta, stripe = results["delta"], results["stripe"]
    # TIP's optimal footprint: 8 chunk I/Os per single-chunk write
    # (1 data + 3 parity, read and written), vs a whole stripe both ways.
    assert delta["chunk_ios"] < stripe["chunk_ios"] / 3
    assert delta["seconds"] < stripe["seconds"]


def test_ablation_write_path_response_time(benchmark):
    times = benchmark.pedantic(response_times, rounds=1, iterations=1)
    rows = [[s, f"{times[s]:.2f}"] for s in STRATEGIES]
    emit(
        "ablation_write_path_latency",
        format_table(["strategy", "mean response ms"], rows),
    )
    # Auto must not be slower than always-RMW beyond noise.
    assert times["auto"] <= times["rmw"] * 1.05
