"""Table IV: improvement of TIP-code over other codes on single write
complexity, at the paper's exact array sizes.

The paper reports percentages from 14.29% (STAR, n=6) to 46.60% (HDD1,
n=24). The STAR column is derivable in closed form and must match the
paper to two decimals; the other columns must preserve sign, monotonicity
in n, and the headline "up to ~46%" magnitude.
"""

import pytest
from _common import EVAL_SIZES, code_for, emit, format_table

from repro.analysis import improvement, single_write_cost

BASELINES = ("triple-star", "star", "cauchy-rs", "hdd1")

#: Paper's Table IV values for the STAR row (exactly reproducible: both
#: TIP and STAR single-write costs are closed-form).
PAPER_STAR_ROW = {6: 14.29, 8: 23.08, 12: 28.57, 14: 29.03, 18: 30.43,
                  20: 30.61, 24: 31.25}


def compute_table() -> dict[str, dict[int, float]]:
    table: dict[str, dict[int, float]] = {}
    tip = {n: single_write_cost(code_for("tip", n)) for n in EVAL_SIZES}
    for family in BASELINES:
        table[family] = {
            n: improvement(single_write_cost(code_for(family, n)), tip[n])
            for n in EVAL_SIZES
        }
    return table


def test_table4_single_write_improvement(benchmark):
    table = benchmark(compute_table)

    rows = [
        [family] + [f"{table[family][n]:.2f}%" for n in EVAL_SIZES]
        for family in BASELINES
    ]
    emit(
        "table4_single_write_improvement",
        format_table(["vs code"] + [f"n={n}" for n in EVAL_SIZES], rows),
    )

    # Exact reproduction of the STAR row (closed-form costs).
    for n, expected in PAPER_STAR_ROW.items():
        assert table["star"][n] == pytest.approx(expected, abs=0.02), n
    # All improvements positive and growing with n; HDD1 the largest.
    for family in BASELINES:
        values = [table[family][n] for n in EVAL_SIZES]
        assert all(v > 0 for v in values), family
        assert values[-1] > values[0], family
    assert table["hdd1"][24] == max(
        table[family][24] for family in BASELINES
    )
    # Headline: TIP improves single-write by several tens of percent.
    assert table["hdd1"][24] > 40.0
