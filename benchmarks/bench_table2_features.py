"""Table II: summary of major features of the compared XOR codes.

Regenerates the qualitative table from measured properties: update
complexity (optimal/medium/high), storage efficiency (optimal iff MDS),
and decoding complexity (low/high), at n = 8.
"""

from _common import FAMILIES, code_for, emit, format_table

from repro.analysis import feature_table

#: The paper's Table II rows for the codes this library evaluates.
PAPER_LABELS = {
    "tip": ("optimal", "optimal", "low"),
    "star": ("high", "optimal", "low"),
    "triple-star": ("high", "optimal", "low"),
    "cauchy-rs": ("high", "optimal", "high"),
    "hdd1": ("high", "optimal", "high"),
    "weaver": ("optimal", "very low", "low"),
}

ALL_FAMILIES = FAMILIES + ("weaver",)


def compute_rows():
    codes = [code_for(family, 10 if family == "weaver" else 8)
             for family in ALL_FAMILIES]
    return dict(zip(ALL_FAMILIES, feature_table(codes, seed=3)))


def test_table2_feature_summary(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)

    table = [
        [
            family,
            rows[family].update_complexity,
            rows[family].storage_label,
            rows[family].decoding_label,
            f"{rows[family].single_write:.2f}",
            f"{rows[family].storage_efficiency:.3f}",
        ]
        for family in ALL_FAMILIES
    ]
    emit(
        "table2_features",
        format_table(
            ["code", "update", "storage", "decoding", "single-write",
             "efficiency"],
            table,
        ),
    )

    # TIP's row must match the paper exactly.
    tip = rows["tip"]
    assert (
        tip.update_complexity, tip.storage_label, tip.decoding_label
    ) == PAPER_LABELS["tip"]
    # Every MDS code -> optimal storage (Table II's storage column).
    for family in FAMILIES:
        assert rows[family].storage_label == "optimal", family
    # No MDS baseline achieves optimal update complexity.
    for family in FAMILIES[1:]:
        assert rows[family].update_complexity != "optimal", family
    # WEAVER: optimal update complexity but "very low" storage — the
    # non-MDS trade-off of Table II.
    weaver = rows["weaver"]
    assert weaver.update_complexity == "optimal"
    assert weaver.storage_label == "very low"
