"""Fleet-scale reliability sweep: codes x placements x failure models.

Shards stripes of each code family over a rack/machine/disk cluster and
runs the event-driven fleet simulator per cell, recording data-loss
probability, unavailability, repair traffic, and repair-time stretch.
This is the datacenter-scale counterpart of the single-array MTTDL
benchmarks: the 3DFT families (TIP, STAR, Cauchy-RS) and the locality
family (XORBAS LRC) face the *same* correlated failures, placements,
and contended repair bandwidth, so their numbers are directly
comparable.

Three failure environments:

* ``independent`` — exponential disk lifetimes only (the single-array
  assumption scaled out; the control).
* ``correlated`` — the field-study preset: latent sectors, machine
  crashes, rack power events, partitions, mild failure bursts.
* ``stress`` — a hostile cell: short lifetimes, strong same-rack
  failure bursts, and a starved repair path, hot enough that stripe
  loss becomes observable within the horizon even for 3DFT codes.

``REPRO_BENCH_FLEET_TRIALS`` / ``REPRO_BENCH_FLEET_STRIPES`` shrink the
sweep for CI smoke runs; the shape assertions hold at every size, the
loss-observability assertion arms only at full size.
"""

import os

from _common import emit, format_table, record_json

from repro.fleet import FleetScenario, run_fleet_trials

TRIALS_ENV = "REPRO_BENCH_FLEET_TRIALS"
STRIPES_ENV = "REPRO_BENCH_FLEET_STRIPES"

#: The comparison set: three 3DFT array codes at n=8 plus the canonical
#: XORBAS LRC(10, 6, 2) locality instance.
CODES = ("tip", "star", "cauchy-rs", "xorbas")
PLACEMENTS = ("random", "copyset", "pss")

#: The hostile environment: same disk lifetimes as the correlated
#: baseline, but tripled same-rack burst pressure (still subcritical,
#: expected fanout 0.6). At full size a repair job moves ~125 GiB per
#: failed disk, so bursty failures overlap those long rebuild windows —
#: which is what kills 3DFT stripes. Tuned so loss is observable but
#: not total (total loss would make every code look alike).
STRESS_MODEL = {
    "disk_lifetime": 8000.0,
    "latent_rate": 1e-4,
    "scrub_interval_hours": 168.0,
    "machine_failure_rate": 1e-3,
    "rack_failure_rate": 1e-4,
    "burst_probability": 0.3,
    "burst_fanout": 2,
    "burst_window_hours": 6.0,
}
MODELS = (
    ("independent", "independent"),
    ("correlated", "correlated"),
    ("stress", STRESS_MODEL),
)

TOPOLOGY = "4x4x4"
MTTF_HOURS = 8000.0
SEED = 2015


def full_size() -> bool:
    return not (os.environ.get(TRIALS_ENV) or os.environ.get(STRIPES_ENV))


def sweep():
    trials = int(os.environ.get(TRIALS_ENV, "3"))
    stripes = int(os.environ.get(STRIPES_ENV, "1000"))
    cells = {}
    for code in CODES:
        for placement in PLACEMENTS:
            for model_name, model in MODELS:
                scenario = FleetScenario(
                    topology=TOPOLOGY,
                    code=code,
                    n=8,
                    placement=placement,
                    failure_model=model,
                    mttf_hours=(
                        MTTF_HOURS if isinstance(model, str) else None
                    ),
                    stripes=stripes,
                    duration_hours=87_600.0,
                    chunk_mib=1024.0,
                    disk_mib_s=40.0,
                    cross_rack_mib_s=120.0,
                    seed=SEED,
                )
                summary = run_fleet_trials(scenario, trials=trials)
                label = f"{code}/{placement}/{model_name}"
                cells[label] = (scenario, summary)
    return cells


def test_fleet_sweep(benchmark):
    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, (scenario, s) in cells.items():
        rows.append([
            label,
            f"{s.loss_trial_fraction:.2f}",
            f"{s.mean_loss_probability:.3e}",
            f"{s.mean_unavailability:.3e}",
            f"{s.mean_repair_hours:.2f}",
            f"{s.mean_cross_rack_read_mib / 1024:.0f}",
        ])
        record_json(f"fleet_{label.replace('/', '_')}", {
            "scenario": scenario.to_dict(),
            "trials": s.trials,
            "seed": scenario.seed,
            "loss_trial_fraction": s.loss_trial_fraction,
            "mean_loss_probability": s.mean_loss_probability,
            "mean_unavailability": s.mean_unavailability,
            "mean_repair_read_mib": s.mean_repair_read_mib,
            "mean_repair_write_mib": s.mean_repair_write_mib,
            "mean_cross_rack_read_mib": s.mean_cross_rack_read_mib,
            "mean_repair_hours": s.mean_repair_hours,
            "total_losses": s.total_losses,
        })
    emit(
        "fleet_reliability_sweep",
        format_table(
            ["cell", "loss trials", "P(stripe loss)", "unavail",
             "repair h", "x-rack GiB"],
            rows,
        ),
    )

    def cell(code, placement, model):
        return cells[f"{code}/{placement}/{model}"][1]

    # Locality pays off on the wire: XORBAS moves fewer repair reads
    # per rebuilt chunk than a same-width MDS decode. Repair writes are
    # one chunk per rebuilt chunk, so read/write is the amplification.
    def read_amplification(summary):
        return summary.mean_repair_read_mib / max(
            summary.mean_repair_write_mib, 1e-9
        )

    for placement in PLACEMENTS:
        xorbas = cell("xorbas", placement, "correlated")
        mds = cell("cauchy-rs", placement, "correlated")
        assert read_amplification(xorbas) < 0.75 * read_amplification(mds), (
            placement
        )

    # Correlated failure domains create unavailability that independent
    # disk failures cannot (a 3DFT stripe never goes unavailable from
    # one machine outage, but latent+machine+rack overlaps do occur).
    for code in CODES:
        independent = cell(code, "random", "independent")
        correlated = cell(code, "random", "correlated")
        assert correlated.mean_unavailability >= (
            independent.mean_unavailability
        ), code

    # The stress environment must dominate the correlated baseline in
    # repair pressure: short lifetimes plus bursts move far more repair
    # traffic over the horizon. (Mean repair *time* is not monotone —
    # once stripes are lost they drop out of later rebuild jobs.)
    for code in CODES:
        stress = cell(code, "random", "stress")
        correlated = cell(code, "random", "correlated")
        assert stress.mean_repair_read_mib > correlated.mean_repair_read_mib

    if full_size():
        # At full size the stress cells must make loss observable —
        # the whole point of recording the sweep (3DFT codes shrug off
        # the default rates; the hostile cell is where they differ).
        stress_losses = sum(
            s.total_losses
            for label, (_, s) in cells.items()
            if label.endswith("/stress")
        )
        assert stress_losses > 0
