"""Write-back cache ablation: cache-on vs cache-off trace replay.

Replays the write-heavy Table III workloads (plus a locality-stressed
synthetic) against the real file-backed store with the write-back stripe
cache (:mod:`repro.raid.cache`) swept over capacities, measuring what
the per-request numbers of Fig. 12 leave on the floor: when a trace
revisits a stripe, TIP's three independent parity deltas XOR-coalesce
across requests and commit once per flush, so the *measured* parity
chunk writes fall below requests x (faults + 1) even though every
individual write is already update-optimal.

The workload specs are re-volumed to the replay device's capacity:
trace offsets wrap modulo device size anyway, and keeping the published
hot-region fraction *of the actual device* preserves the locality the
cache exists to exploit (a 16 GB hot region folded onto a 7.5 MiB
device is just uniform noise).

Two cross-checks make the sweep evidence rather than narrative:

* the cache's ``raw_io`` pricing (what the request stream would have
  cost uncached, priced per run with the store's own planner) must
  equal the *measured* counters of the genuinely uncached baseline
  replay, field for field;
* the cached replay's final device image must be byte-identical to the
  uncached one (same trace, deterministic payloads), and scrub clean.

Results land in ``results/bench_cache.txt`` and ``BENCH_cache.json``
(hit rate + parity-writes-per-request per workload and cache size).
The amortization assertions are the CI guard the issue asks for:
coalesced parity writes <= uncached at every size, and strictly fewer
with amortization > 1.5x once the cache holds 8+ stripes.
"""

import json
import os
import tempfile
from dataclasses import replace
from pathlib import Path

import numpy as np

from _common import emit, format_table
from repro.codes import make_code
from repro.raid import BlockDevice
from repro.store import ArrayStore
from repro.traces import generate_trace
from repro.traces.synthetic import TABLE3_WORKLOADS, WorkloadSpec

N = 8
CHUNK = 4096
STRIPES = 64
REQUESTS = int(os.environ.get("REPRO_BENCH_CACHE_REQUESTS", "500"))
CACHE_SIZES = (4, 8, 16, 32)
TABLE3_PICKS = ("prxy_0", "src2_0")

#: Acceptance bar: at this cache size and beyond, every write-heavy
#: workload must measure strictly fewer parity chunk writes than the
#: uncached replay, and the locality-stressed trace must beat it by
#: more than this factor (the Table III specs re-volumed here hover
#: around ~1.5x at 8 stripes; the bound with margin belongs to the
#: workload built to have reusable stripes).
AMORTIZATION_AT = 8
MIN_AMORTIZATION = 1.5
AMORTIZATION_WORKLOAD = "hot_writes"

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_cache.json"


def _capacity_bytes() -> int:
    code = make_code("tip", N)
    return STRIPES * code.num_data * CHUNK


def _workload_specs() -> dict[str, WorkloadSpec]:
    """Benchmark workloads, re-volumed to the replay device."""
    volume_gb = _capacity_bytes() / (1 << 30)
    specs = {
        name: replace(TABLE3_WORKLOADS[name], volume_gb=volume_gb)
        for name in TABLE3_PICKS
    }
    # Locality-stressed: nearly pure small writes with the standard
    # 80/20 hot region, volumed at half the device so the hot region
    # (~6 stripes) fits inside an 8-stripe cache — the workload shape
    # the write-back cache is for.
    specs["hot_writes"] = WorkloadSpec(
        "hot_writes", REQUESTS, 200.0, 0.97, 4.0,
        sequential_fraction=0.30, volume_gb=volume_gb / 2,
    )
    return specs


def _replay(trace, cache_stripes, return_image=False):
    """Replay ``trace`` on a fresh store; optionally return the device
    image read back after the final flush."""
    code = make_code("tip", N)
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmpdir:
        with ArrayStore(
            code, tmpdir, stripes=STRIPES, chunk_bytes=CHUNK,
            cache_stripes=cache_stripes,
        ) as store:
            result = BlockDevice(store).replay(trace)
            image = (
                store.read_bytes(0, store.capacity_bytes).copy()
                if return_image
                else None
            )
            corrupt = store.scrub()
    assert corrupt == [], (cache_stripes, corrupt)
    return (result, image) if return_image else result


def _assert_counters_equal(pricing, measured, context):
    assert pricing.data_chunks_read == measured.data_chunks_read, context
    assert pricing.parity_chunks_read == measured.parity_chunks_read, context
    assert (
        pricing.data_chunks_written == measured.data_chunks_written
    ), context
    assert (
        pricing.parity_chunks_written == measured.parity_chunks_written
    ), context


def test_cache_replay_ablation():
    """Sweep cache size per workload; record + guard the amortization."""
    rows = []
    payload = {
        "code": "tip",
        "n": N,
        "chunk_bytes": CHUNK,
        "stripes": STRIPES,
        "requests": REQUESTS,
        "workloads": {},
    }
    for name, spec in _workload_specs().items():
        trace = generate_trace(spec, requests=REQUESTS, seed=42)
        baseline = _replay(trace, 0)
        base_parity = baseline.io.parity_chunks_written
        writes = max(baseline.writes, 1)
        rows.append(
            [name, 0, "-", base_parity, f"{base_parity / writes:.2f}", "-"]
        )
        sweep = {
            "0": {
                "parity_chunk_writes": base_parity,
                "parity_writes_per_request": round(base_parity / writes, 3),
            }
        }
        for size in CACHE_SIZES:
            result = _replay(trace, size)
            cache = result.cache
            # The cache's uncached pricing must equal the measured
            # uncached baseline — raw_io is evidence, not an estimate.
            _assert_counters_equal(cache.raw_io, baseline.io, (name, size))
            parity = result.io.parity_chunks_written
            amortization = cache.parity_write_amortization
            # JSON-safe: inf (parity absorbed, none flushed yet) becomes
            # null — json.dumps would emit the non-standard `Infinity`.
            finite = cache.parity_write_amortization_or_none
            rows.append([
                name, size, f"{cache.hit_rate:.1%}", parity,
                f"{parity / writes:.2f}",
                f"{amortization:.2f}" if finite is not None else "inf",
            ])
            sweep[str(size)] = {
                "hit_rate": round(cache.hit_rate, 4),
                "parity_chunk_writes": parity,
                "parity_writes_per_request": round(parity / writes, 3),
                "parity_write_amortization": (
                    round(finite, 3) if finite is not None else None
                ),
                "chunk_ios_saved": cache.chunk_ios_saved,
            }
            assert parity <= base_parity, (name, size, parity, base_parity)
            if size >= AMORTIZATION_AT:
                assert parity < base_parity, (name, size)
                if name == AMORTIZATION_WORKLOAD:
                    assert amortization > MIN_AMORTIZATION, (
                        name, size, amortization,
                    )
        payload["workloads"][name] = {
            "write_fraction": spec.write_fraction,
            "write_requests": baseline.writes,
            "sweep": sweep,
        }
    emit(
        "bench_cache",
        [
            f"code=tip n={N} stripes={STRIPES} chunk={CHUNK} "
            f"requests={REQUESTS}",
            *format_table(
                ["workload", "cache", "hit rate", "parity writes",
                 "parity/write", "amortization"],
                rows,
            ),
        ],
    )
    # allow_nan=False: any inf/nan sneaking into the payload is a bug in
    # the metrics, not something to serialize as non-standard JSON.
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def test_cached_replay_content_matches_uncached():
    """Same trace, same final bytes — with and without the cache."""
    spec = _workload_specs()["hot_writes"]
    trace = generate_trace(spec, requests=min(REQUESTS, 300), seed=7)
    _, uncached_image = _replay(trace, 0, return_image=True)
    _, cached_image = _replay(trace, AMORTIZATION_AT, return_image=True)
    assert np.array_equal(uncached_image, cached_image)
