"""Ablation: the two decoding optimizations of Sec. IV-C.

1. **Bit matrix scheduling** (Sec. IV-C1): recovery XOR count with the
   smart schedule vs. the naive row-by-row schedule.
2. **Iterative reconstruction** (Sec. IV-C2): recover one disk from the
   full system then the rest with the cheaper 2-erasure schedule, vs.
   solving all three at once.

Claims checked: scheduling never loses and saves measurably on the dense
decoders; iterative reconstruction never loses and "is more efficient
when n is large" (paper's words).
"""

import itertools
import random

from _common import FAMILIES, code_for, emit, format_table

from repro.analysis.xor_cost import decoding_xor_stats
from repro.bitmatrix import naive_schedule


def scheduling_ablation(n: int, samples: int = 12):
    """Mean recovery XORs per data element: naive vs scheduled."""
    out = {}
    rng = random.Random(4)
    for family in FAMILIES:
        code = code_for(family, n)
        combos = list(itertools.combinations(range(code.cols), code.faults))
        picked = rng.sample(combos, min(samples, len(combos)))
        naive_total = 0
        smart_total = 0
        for combo in picked:
            decoder = code.decoder_for(combo)
            naive_total += naive_schedule(decoder.plan.matrix).xor_count
            smart_total += decoder.plan.schedule.xor_count
        out[family] = (
            naive_total / len(picked) / code.num_data,
            smart_total / len(picked) / code.num_data,
        )
    return out


def iterative_ablation(sizes=(8, 12, 14, 18)):
    """Mean recovery XORs per data element: direct vs iterative, for TIP."""
    out = {}
    for n in sizes:
        code = code_for("tip", n)
        direct = decoding_xor_stats(code, samples=15, seed=5, iterative=False)
        iterative = decoding_xor_stats(code, samples=15, seed=5, iterative=True)
        out[n] = (
            direct.mean_xors_per_data_element,
            iterative.mean_xors_per_data_element,
        )
    return out


def test_ablation_bit_matrix_scheduling(benchmark):
    results = benchmark.pedantic(
        lambda: scheduling_ablation(12), rounds=1, iterations=1
    )
    rows = [
        [family, f"{naive:.2f}", f"{smart:.2f}",
         f"{(1 - smart / naive) * 100:.1f}%"]
        for family, (naive, smart) in results.items()
    ]
    emit(
        "ablation_scheduling",
        format_table(["code", "naive XORs/el", "scheduled", "saved"], rows),
    )
    for family, (naive, smart) in results.items():
        assert smart <= naive + 1e-9, family
    # Scheduling must save something on at least the dense decoders.
    assert any(smart < naive * 0.95 for naive, smart in results.values())


def test_ablation_iterative_reconstruction(benchmark):
    results = benchmark.pedantic(iterative_ablation, rounds=1, iterations=1)
    rows = [
        [str(n), f"{direct:.2f}", f"{iterative:.2f}",
         f"{(1 - iterative / direct) * 100:.1f}%"]
        for n, (direct, iterative) in results.items()
    ]
    emit(
        "ablation_iterative_reconstruction",
        format_table(["n", "direct XORs/el", "iterative", "saved"], rows),
    )
    savings = {
        n: 1 - iterative / direct
        for n, (direct, iterative) in results.items()
    }
    for n, saving in savings.items():
        assert saving >= -1e-9, n
    # "This approach is more efficient when n is large": the largest size
    # must save at least as much as the smallest.
    sizes = sorted(savings)
    assert savings[sizes[-1]] >= savings[sizes[0]] - 0.02
