"""Fig. 10: single write complexity under a uniform workload.

Regenerates the paper's series — average number of modified elements per
single-element write for each code at n = 6..24 — and asserts the
figure's shape: TIP is flat at the optimum of 4, every baseline is above
it, HDD1 is the worst, and the baselines grow with n.
"""

from _common import EVAL_SIZES, FAMILIES, code_for, emit, format_table

from repro.analysis import single_write_cost


def compute_series() -> dict[str, dict[int, float]]:
    return {
        family: {n: single_write_cost(code_for(family, n)) for n in EVAL_SIZES}
        for family in FAMILIES
    }


def test_fig10_single_write_complexity(benchmark):
    series = benchmark(compute_series)

    rows = [
        [family] + [f"{series[family][n]:.3f}" for n in EVAL_SIZES]
        for family in FAMILIES
    ]
    emit(
        "fig10_single_write",
        format_table(["code"] + [f"n={n}" for n in EVAL_SIZES], rows),
    )

    tip = series["tip"]
    assert all(value == 4.0 for value in tip.values()), "TIP must be optimal"
    for family in FAMILIES[1:]:
        for n in EVAL_SIZES:
            assert series[family][n] > 4.0, (family, n)
        # Baselines trend upward across the size range.
        assert series[family][24] > series[family][6], family
    for n in EVAL_SIZES:
        worst = max(series[family][n] for family in FAMILIES)
        assert series["hdd1"][n] == worst, n
