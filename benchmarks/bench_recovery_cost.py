"""Extension: rebuild-read traffic per code (recovery I/O analysis).

For each code, the fraction of surviving elements that must be read to
rebuild 1 and 3 lost disks. This complements Figs. 14-15 (XOR cost) with
the I/O side of recovery, and quantifies the classic trade-off: MDS 3DFT
codes read most of the stripe to rebuild even one disk.
"""

from _common import FAMILIES, code_for, emit, format_table

from repro.analysis import recovery_cost_stats

N = 12


def compute():
    table = {}
    for family in FAMILIES:
        code = code_for(family, N)
        single = recovery_cost_stats(code, failures=1, samples=12, seed=6)
        triple = recovery_cost_stats(code, failures=3, samples=12, seed=6)
        table[family] = (single, triple)
    return table


def test_recovery_read_traffic(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            family,
            f"{single.mean_read_fraction:.2f}",
            f"{single.mean_reads_per_recovered:.2f}",
            f"{triple.mean_read_fraction:.2f}",
            f"{triple.mean_reads_per_recovered:.2f}",
        ]
        for family, (single, triple) in table.items()
    ]
    emit(
        "recovery_read_traffic",
        format_table(
            ["code", "1-fail frac", "reads/elem", "3-fail frac",
             "reads/elem"],
            rows,
        ),
    )
    for family, (single, triple) in table.items():
        assert 0 < single.mean_read_fraction <= 1.0, family
        assert triple.mean_read_fraction >= single.mean_read_fraction - 0.05
        # Amortization: per recovered element, triple rebuilds are
        # cheaper than single rebuilds (shared reads).
        assert (
            triple.mean_reads_per_recovered
            <= single.mean_reads_per_recovered + 1e-9
        ), family
