"""Fig. 15: decoding performance — (a) speed in GiB/s recovering random
triple failures, (b) decoding complexity in XORs per data element.

Failures are drawn over data and parity disks alike, as in the paper.
Shape claims: TIP's parity-check-matrix decoder (with bit-matrix
scheduling and iterative reconstruction) is among the cheapest; the
adjuster/chained baselines (STAR, HDD1) pay more XORs per element.
"""

import pytest
from _common import FAMILIES, code_for, emit, format_table, record_json, scaled_bytes

from repro.analysis.xor_cost import decoding_xor_stats
from repro.codec import measure_decode_throughput

N = 12
DATA_BYTES = scaled_bytes(16 << 20)
PACKET = 4096


@pytest.mark.parametrize("family", FAMILIES)
def test_fig15a_decoding_speed(benchmark, family):
    code = code_for(family, N)
    # Warm the decoder cache (recovery algebra + compiled plans) so the
    # benchmark measures steady-state XOR throughput, matching the
    # paper's repeated-trials methodology.
    measure_decode_throughput(
        code, data_bytes=1 << 20, packet_size=PACKET, patterns=6, seed=3
    )

    def decode_once():
        return measure_decode_throughput(
            code, data_bytes=DATA_BYTES, packet_size=PACKET, patterns=6,
            seed=3,
        )

    result = benchmark.pedantic(decode_once, rounds=3, iterations=1)
    emit(
        f"fig15a_decoding_speed_{family}",
        [
            f"code={code.name} n={N}",
            f"throughput_gib_s={result.gib_per_second:.3f}",
            f"xors_per_element={result.xors_per_element:.3f}",
        ],
    )
    record_json(
        f"fig15a_decoding_speed_{family}",
        {
            "code": code.name,
            "n": N,
            "data_bytes": DATA_BYTES,
            "engine": "compiled",
            "throughput_gib_s": round(result.gib_per_second, 4),
            "xors_per_element": round(result.xors_per_element, 4),
        },
    )
    assert result.gib_per_second > 0


def test_fig15b_decoding_complexity(benchmark):
    def compute():
        return {
            family: decoding_xor_stats(
                code_for(family, N), samples=30, seed=7
            ).mean_xors_per_data_element
            for family in FAMILIES
        }

    complexity = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[family, f"{complexity[family]:.3f}"] for family in FAMILIES]
    emit(
        "fig15b_decoding_complexity",
        format_table(["code", "XORs/element"], rows),
    )
    tip = complexity["tip"]
    # TIP decodes cheaper than the adjuster/chained XOR baselines.
    for family in ("star", "hdd1"):
        assert tip < complexity[family], family
    assert tip < complexity["triple-star"] * 1.1
