"""Extension: degraded-mode response time as failures accumulate.

The paper evaluates healthy arrays; a 3DFT's operational value shows when
disks are actually down. This benchmark replays a read-heavy workload on
a TIP array with 0-3 failed disks and reports the latency amplification
of on-the-fly reconstruction, plus the per-request element-read blow-up.
"""

from _common import code_for, emit, format_table

from repro.disksim import ArraySimulator
from repro.traces import generate_trace

N = 8
CHUNK = 8 * 1024


def compute():
    trace = generate_trace("financial_2", requests=800, seed=21).stretched(3.0)
    out = {}
    for failures in range(4):
        failed = tuple(range(failures))
        sim = ArraySimulator(code_for("tip", N), CHUNK, seed=4, failed=failed)
        result = sim.run(trace)
        out[failures] = (result.mean_response_ms, result.total_element_ios)
    return out


def test_degraded_mode_latency(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    healthy_ms, healthy_ios = results[0]
    rows = [
        [str(k), f"{ms:.2f}", f"{ms / healthy_ms:.2f}x", str(ios)]
        for k, (ms, ios) in results.items()
    ]
    emit(
        "degraded_mode_latency",
        format_table(
            ["failed disks", "mean resp ms", "vs healthy", "element I/Os"],
            rows,
        ),
    )
    # Element I/Os grow monotonically with failures (reconstruction reads).
    ios = [results[k][1] for k in sorted(results)]
    assert all(b >= a for a, b in zip(ios, ios[1:]))
    # Triple-degraded reads cost measurably more than healthy ones.
    assert results[3][0] > results[0][0]
    assert results[3][1] > results[0][1] * 1.5
