"""Fig. 13: average response time on the Financial-like OLTP traces,
simulated on the event-driven disk array (the DiskSim substitute).

As in the paper, results are *normalized* (here: to TIP's mean response
time at the same size). Shape claims: TIP has the lowest response time at
every size on the write-heavy financial_1; orderings follow the element
I/O counts of Fig. 12.
"""

from _common import SIM_SIZES, FAMILIES, code_for, emit, format_table

from repro.disksim import simulate_trace
from repro.traces import generate_trace

WORKLOADS = ("financial_1", "financial_2")
REQUESTS = 1200
CHUNK = 8 * 1024
#: Replay slowdown keeping the simulated 7.2k-RPM array at moderate
#: utilization (the traces were captured against much larger arrays);
#: without it the slower codes saturate and queueing delays diverge.
STRETCH = {"financial_1": 5.0, "financial_2": 2.0}


def compute_series() -> dict[str, dict[str, dict[int, float]]]:
    out: dict[str, dict[str, dict[int, float]]] = {}
    for workload in WORKLOADS:
        trace = generate_trace(workload, requests=REQUESTS, seed=77)
        trace = trace.stretched(STRETCH[workload])
        out[workload] = {
            family: {
                n: simulate_trace(
                    code_for(family, n), trace, chunk_bytes=CHUNK, seed=5
                ).mean_response_ms
                for n in SIM_SIZES
            }
            for family in FAMILIES
        }
    return out


def test_fig13_average_response_time(benchmark):
    series = benchmark.pedantic(compute_series, rounds=1, iterations=1)

    lines: list[str] = []
    for workload in WORKLOADS:
        lines.append(f"workload {workload} (normalized to TIP)")
        rows = []
        for family in FAMILIES:
            rows.append(
                [family]
                + [
                    f"{series[workload][family][n] / series[workload]['tip'][n]:.3f}"
                    for n in SIM_SIZES
                ]
            )
        lines.extend(
            format_table(["code"] + [f"n={n}" for n in SIM_SIZES], rows)
        )
        lines.append("")
    emit("fig13_response_time", lines)

    # Write-heavy financial_1 (76.8% writes): TIP strictly beats the
    # chained/dense codes at every size; STAR (whose stripes are much
    # smaller at these sizes) stays within simulation noise of TIP.
    for n in SIM_SIZES:
        tip = series["financial_1"]["tip"][n]
        for family in ("triple-star", "cauchy-rs", "hdd1"):
            assert tip < series["financial_1"][family][n], (family, n)
        assert tip < series["financial_1"]["star"][n] * 1.07, n
        # The chained-parity codes (HDD1, Triple-Star) are the two
        # slowest: their cascades hammer the same parity disks.
        ranked = sorted(
            FAMILIES, key=lambda f: series["financial_1"][f][n]
        )
        assert set(ranked[-2:]) == {"hdd1", "triple-star"}, n
    # Read-heavy financial_2 (17.7% writes): differences shrink — the
    # normalized spread is much smaller than on financial_1.
    for n in SIM_SIZES:
        spread_f2 = (
            max(series["financial_2"][f][n] for f in FAMILIES)
            / series["financial_2"]["tip"][n]
        )
        spread_f1 = (
            max(series["financial_1"][f][n] for f in FAMILIES)
            / series["financial_1"]["tip"][n]
        )
        assert spread_f2 < spread_f1, n
