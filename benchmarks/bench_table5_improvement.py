"""Table V: improvement of TIP over other codes on partial stripe write
complexity at l = 2.

The paper reports 13.95-23.24% over Triple-Star and 32.11-43.18% over
HDD1, growing with n. Those two columns reproduce here (same stripe
geometry); the STAR/Cauchy columns depend on the baselines' much smaller
word sizes at small n and are reported for the record.
"""

from _common import EVAL_SIZES, code_for, emit, format_table

from repro.analysis import improvement, partial_write_cost

BASELINES = ("triple-star", "star", "cauchy-rs", "hdd1")


def compute_table() -> dict[str, dict[int, float]]:
    tip = {n: partial_write_cost(code_for("tip", n), 2) for n in EVAL_SIZES}
    return {
        family: {
            n: improvement(
                partial_write_cost(code_for(family, n), 2), tip[n]
            )
            for n in EVAL_SIZES
        }
        for family in BASELINES
    }


def test_table5_partial_write_improvement(benchmark):
    table = benchmark.pedantic(compute_table, rounds=1, iterations=1)

    rows = [
        [family] + [f"{table[family][n]:.2f}%" for n in EVAL_SIZES]
        for family in BASELINES
    ]
    emit(
        "table5_partial_write_improvement",
        format_table(["vs code"] + [f"n={n}" for n in EVAL_SIZES], rows),
    )

    # Triple-Star and HDD1 columns: positive, growing, right magnitude.
    for family in ("triple-star", "hdd1"):
        values = [table[family][n] for n in EVAL_SIZES]
        assert all(v > 0 for v in values), family
        assert values[-1] > values[0], family
    assert 8.0 < table["triple-star"][6] < 20.0
    assert 15.0 < table["triple-star"][24] < 30.0
    assert 25.0 < table["hdd1"][6] < 45.0
    assert 35.0 < table["hdd1"][24] < 55.0
