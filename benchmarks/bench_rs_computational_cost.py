"""Sec. II claim: word-based Reed-Solomon's Galois-field arithmetic is
far more expensive than XOR coding.

The paper excludes classic RS from its XOR comparisons because "the
computational cost over Galois Field is extremely high, which limits the
performance on disk arrays". This benchmark quantifies that on identical
payloads: bytes/second encoding with GF(2^8) multiply-accumulate (RS)
vs. pure XOR schedules (TIP), at the same (n, k).
"""

import time

import numpy as np
from _common import emit, format_table

from repro.codec import measure_encode_throughput
from repro.codes import make_code
from repro.codes.reed_solomon import ReedSolomonCode

N = 12
PACKET = 4096
DATA_BYTES = 8 << 20


def rs_encode_throughput() -> float:
    rs = ReedSolomonCode(n=N, m=3)
    rng = np.random.default_rng(0)
    width = DATA_BYTES // rs.k
    data = rng.integers(0, 256, size=(rs.k, width), dtype=np.uint8)
    start = time.perf_counter()
    rs.encode(data)
    elapsed = time.perf_counter() - start
    return rs.k * width / (1 << 30) / elapsed


def test_rs_vs_xor_computational_cost(benchmark):
    def compute():
        tip = measure_encode_throughput(
            make_code("tip", N), data_bytes=DATA_BYTES, packet_size=PACKET
        )
        return tip.gib_per_second, rs_encode_throughput()

    tip_speed, rs_speed = benchmark.pedantic(compute, rounds=2, iterations=1)
    rows = [
        ["tip (XOR)", f"{tip_speed:.3f}"],
        ["reed-solomon GF(2^8)", f"{rs_speed:.3f}"],
        ["XOR advantage", f"{tip_speed / rs_speed:.1f}x"],
    ]
    emit("rs_computational_cost", format_table(["codec", "GiB/s"], rows))
    # The paper's qualitative claim: XOR coding is decisively faster.
    assert tip_speed > rs_speed * 2.0


def test_rs_decode_matches_encode_cost(benchmark):
    """RS repair pays the same GF multiply cost as encode (no free lunch
    on the decode side either)."""
    rs = ReedSolomonCode(n=N, m=3)
    rng = np.random.default_rng(1)
    width = (2 << 20) // rs.k
    shards = rs.encode(
        rng.integers(0, 256, size=(rs.k, width), dtype=np.uint8)
    )
    damaged = shards.copy()
    for row in (0, 4, 11):
        damaged[row] = 0

    def decode():
        return rs.decode(damaged, [0, 4, 11])

    repaired = benchmark.pedantic(decode, rounds=2, iterations=1)
    assert np.array_equal(repaired, shards)
