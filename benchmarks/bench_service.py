"""Latency vs offered load through the concurrent block service.

The serial benchmarks answer "what does one caller cost"; this one
answers the service-layer question PR 6 exists for: what happens to
request latency when *N* closed-loop callers contend on one array.
Each sweep point replays the same write-heavy Table III trace split
into N disjoint stripe partitions (:func:`repro.service.split_disjoint`)
through :class:`repro.service.BlockService`, recording throughput and
p50/p99/mean request latency — offered load is the worker count, the
closed-loop load-generator convention.

Two guards make the sweep evidence rather than narrative:

* **serial equivalence** — at one sweep point the concurrent replay's
  final device image must be byte-identical to replaying the same
  partitions back-to-back serially, with identical aggregate
  ``IoCounters`` (the PR's acceptance criterion, run on every CI pass);
* **repair under load** — one configuration runs with fault injection
  and throttled background repair ticks active, and must still finish
  with a clean scrub.

Results land in ``results/bench_service.txt`` and ``BENCH_service.json``
(p50/p99 per concurrency level, plus the repair-active configuration).
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from _common import emit, format_table
from repro.codes import make_code
from repro.faults import FaultPlan, RepairController, Scrubber
from repro.raid import BlockDevice
from repro.service import replay_concurrent, split_disjoint
from repro.store import ArrayStore
from repro.traces import generate_trace

N = 8
CHUNK = 4096
STRIPES = 64
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "600"))
WORKLOAD = "prxy_0"
CONCURRENCY_LEVELS = (1, 2, 4, 8)
EQUIVALENCE_LEVEL = 4
REPAIR_LEVEL = 4
REPAIR_EVERY = 25
FAULT_SPEC = "seed=11;latent:disk=2,rate=0.002;transient:disk=4,rate=0.002"

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_service.json"


def _make_store(tmpdir, fault_plan=None):
    store = ArrayStore(
        make_code("tip", N), tmpdir, stripes=STRIPES, chunk_bytes=CHUNK,
        cache_stripes=0,
    )
    if fault_plan is not None:
        store.set_fault_plan(fault_plan)
    return store


def _point(result):
    return {
        "workers": result.workers,
        "requests": result.requests,
        "throughput_iops": round(result.throughput_iops, 1),
        "p50_latency_ms": round(result.p50_latency_ms, 4),
        "p99_latency_ms": round(result.p99_latency_ms, 4),
        "mean_latency_ms": round(result.mean_latency_ms, 4),
        "retried_requests": result.retried_requests,
        "repair_ticks": result.repair_ticks,
    }


def _row(label, result):
    return [
        label, result.workers, f"{result.throughput_iops:.0f}",
        f"{result.p50_latency_ms:.3f}", f"{result.p99_latency_ms:.3f}",
        f"{result.mean_latency_ms:.3f}", result.repair_ticks,
    ]


def test_service_latency_vs_offered_load():
    """Sweep closed-loop workers; guard equivalence and record latency."""
    trace = generate_trace(WORKLOAD, requests=REQUESTS, seed=42)
    rows = []
    payload = {
        "code": "tip",
        "n": N,
        "chunk_bytes": CHUNK,
        "stripes": STRIPES,
        "requests": REQUESTS,
        "trace": WORKLOAD,
        "sweep": [],
        "repair_active": None,
    }

    for workers in CONCURRENCY_LEVELS:
        with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmpdir:
            with _make_store(tmpdir) as store:
                parts = split_disjoint(trace, workers, store)
                result = replay_concurrent(store, parts)
                image = store.read_bytes(0, store.capacity_bytes).copy()
        assert result.requests == REQUESTS
        assert len(result.latencies_ms) == REQUESTS
        assert result.p99_latency_ms >= result.p50_latency_ms
        rows.append(_row("healthy", result))
        payload["sweep"].append(_point(result))

        if workers == EQUIVALENCE_LEVEL:
            # The acceptance criterion: concurrent replay of disjoint
            # partitions ≡ serial replay, byte for byte and counter for
            # counter.
            with tempfile.TemporaryDirectory(prefix="bench-svc-") as ref:
                with _make_store(ref) as serial:
                    before = serial.io.snapshot()
                    device = BlockDevice(serial)
                    for part in parts:
                        device.replay(part)
                    serial_io = serial.io.snapshot() - before
                    serial_image = serial.read_bytes(
                        0, serial.capacity_bytes
                    ).copy()
            assert np.array_equal(image, serial_image), workers
            assert result.io == serial_io, workers

    # One configuration with background repair arbitrated against the
    # foreground: injected faults, one throttled tick per REPAIR_EVERY
    # completed requests, and a clean scrub at the end.
    plan = FaultPlan.parse(FAULT_SPEC)
    with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmpdir:
        with _make_store(tmpdir, fault_plan=plan) as store:
            repair = RepairController(store)
            parts = split_disjoint(trace, REPAIR_LEVEL, store)
            result = replay_concurrent(
                store, parts, repair=repair, repair_every=REPAIR_EVERY
            )
            store.set_fault_plan(None)  # audit, don't mint new faults
            report = Scrubber(store).run()
    assert report.unfixable == 0, report.summary()
    assert result.repair_ticks == REQUESTS // REPAIR_EVERY
    rows.append(_row("repair-on", result))
    payload["repair_active"] = {
        **_point(result),
        "fault_spec": FAULT_SPEC,
        "repair_every": REPAIR_EVERY,
        "faults_injected": plan.stats.latent_minted
        + plan.stats.fail_stops,
        "scrub": report.summary(),
    }

    emit(
        "bench_service",
        [
            f"code=tip n={N} stripes={STRIPES} chunk={CHUNK} "
            f"requests={REQUESTS} trace={WORKLOAD}",
            *format_table(
                ["config", "workers", "req/s", "p50 ms", "p99 ms",
                 "mean ms", "ticks"],
                rows,
            ),
        ],
    )
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
