"""Latency vs offered load through the concurrent block service.

The serial benchmarks answer "what does one caller cost"; this one
answers the service-layer question PR 6 exists for: what happens to
request latency when *N* closed-loop callers contend on one array.
Each sweep point replays the same write-heavy Table III trace split
into N disjoint stripe partitions (:func:`repro.service.split_disjoint`)
through :class:`repro.service.BlockService`, recording throughput and
p50/p99/mean request latency — offered load is the worker count, the
closed-loop load-generator convention.

Two guards make the sweep evidence rather than narrative:

* **serial equivalence** — at one sweep point the concurrent replay's
  final device image must be byte-identical to replaying the same
  partitions back-to-back serially, with identical aggregate
  ``IoCounters`` (the PR's acceptance criterion, run on every CI pass);
* **repair under load** — one configuration runs with fault injection
  and throttled background repair ticks active, and must still finish
  with a clean scrub.

A second experiment sweeps the *batched* request path: an open-loop
submitter keeps a standing queue in front of the coalescing dispatcher
(:func:`repro.service.replay_batched`) at batch sizes 1/4/16/64, guarded
by byte-level and ``IoCounters`` equivalence against the per-request
path, a >= 4x backing-file syscall reduction at batch 16, and throughput
floors (batch 1 within 0.95x of unbatched; batch 16 at least 1.1x batch
1 — 1.3x at full size).

Results land in ``results/bench_service*.txt`` and
``BENCH_service.json`` (p50/p99 per concurrency level and per batch
size, plus the repair-active configuration). Every record carries
``host_cpus``, the service's lock-contention counters, and the syscall
meter, so throughput numbers can be attributed across machines.
"""

import json
import os
import statistics
import tempfile
from pathlib import Path

import numpy as np

from _common import emit, format_table
from repro.codes import make_code
from repro.faults import FaultPlan, RepairController, Scrubber
from repro.raid import BlockDevice
from repro.service import replay_batched, replay_concurrent, split_disjoint
from repro.store import ArrayStore
from repro.traces import generate_trace

N = 8
CHUNK = 4096
STRIPES = 64
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "600"))
WORKLOAD = "prxy_0"
CONCURRENCY_LEVELS = (1, 2, 4, 8)
BATCH_LEVELS = (1, 4, 16, 64)
#: Interleaved measurement rounds per batch-sweep configuration; the
#: timing guards compare medians of per-round ratios (drift control).
ROUNDS = 3
EQUIVALENCE_LEVEL = 4
REPAIR_LEVEL = 4
REPAIR_EVERY = 25
FAULT_SPEC = "seed=11;latent:disk=2,rate=0.002;transient:disk=4,rate=0.002"

ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = ROOT / "BENCH_service.json"


def _make_store(tmpdir, fault_plan=None):
    store = ArrayStore(
        make_code("tip", N), tmpdir, stripes=STRIPES, chunk_bytes=CHUNK,
        cache_stripes=0,
    )
    if fault_plan is not None:
        store.set_fault_plan(fault_plan)
    return store


def _point(result):
    point = {
        "workers": result.workers,
        "requests": result.requests,
        "throughput_iops": round(result.throughput_iops, 1),
        "p50_latency_ms": round(result.p50_latency_ms, 4),
        "p99_latency_ms": round(result.p99_latency_ms, 4),
        "mean_latency_ms": round(result.mean_latency_ms, 4),
        "retried_requests": result.retried_requests,
        "repair_ticks": result.repair_ticks,
        "host_cpus": result.host_cpus,
        "contention": dict(result.contention or {}),
        "batch_size": result.batch_size,
        "batches": result.batches,
    }
    if result.syscalls is not None:
        point["syscalls"] = {
            "reads": result.syscalls.reads,
            "writes": result.syscalls.writes,
            "vector_reads": result.syscalls.vector_reads,
            "vector_writes": result.syscalls.vector_writes,
            "total": result.syscalls.total,
            "per_request": round(result.syscalls_per_request, 2),
        }
    return point


def _merge_json(**sections):
    """Fold one experiment's sections into ``BENCH_service.json``.

    The worker sweep and the batch sweep are separate tests; each
    rewrites only its own top-level keys so a partial run (``-x``, or a
    single ``-k`` selection) never clobbers the other's record.
    """
    payload = {}
    if JSON_PATH.exists():
        payload = json.loads(JSON_PATH.read_text())
    payload.update(
        code="tip",
        n=N,
        chunk_bytes=CHUNK,
        stripes=STRIPES,
        requests=REQUESTS,
        trace=WORKLOAD,
    )
    payload.update(sections)
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )


def _row(label, result):
    return [
        label, result.workers, f"{result.throughput_iops:.0f}",
        f"{result.p50_latency_ms:.3f}", f"{result.p99_latency_ms:.3f}",
        f"{result.mean_latency_ms:.3f}", result.repair_ticks,
    ]


def test_service_latency_vs_offered_load():
    """Sweep closed-loop workers; guard equivalence and record latency."""
    trace = generate_trace(WORKLOAD, requests=REQUESTS, seed=42)
    rows = []
    sweep = []

    for workers in CONCURRENCY_LEVELS:
        with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmpdir:
            with _make_store(tmpdir) as store:
                parts = split_disjoint(trace, workers, store)
                result = replay_concurrent(store, parts)
                image = store.read_bytes(0, store.capacity_bytes).copy()
        assert result.requests == REQUESTS
        assert len(result.latencies_ms) == REQUESTS
        assert result.p99_latency_ms >= result.p50_latency_ms
        rows.append(_row("healthy", result))
        sweep.append(_point(result))

        if workers == EQUIVALENCE_LEVEL:
            # The acceptance criterion: concurrent replay of disjoint
            # partitions ≡ serial replay, byte for byte and counter for
            # counter.
            with tempfile.TemporaryDirectory(prefix="bench-svc-") as ref:
                with _make_store(ref) as serial:
                    before = serial.io.snapshot()
                    device = BlockDevice(serial)
                    for part in parts:
                        device.replay(part)
                    serial_io = serial.io.snapshot() - before
                    serial_image = serial.read_bytes(
                        0, serial.capacity_bytes
                    ).copy()
            assert np.array_equal(image, serial_image), workers
            assert result.io == serial_io, workers

    # One configuration with background repair arbitrated against the
    # foreground: injected faults, one throttled tick per REPAIR_EVERY
    # completed requests, and a clean scrub at the end.
    plan = FaultPlan.parse(FAULT_SPEC)
    with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmpdir:
        with _make_store(tmpdir, fault_plan=plan) as store:
            repair = RepairController(store)
            parts = split_disjoint(trace, REPAIR_LEVEL, store)
            result = replay_concurrent(
                store, parts, repair=repair, repair_every=REPAIR_EVERY
            )
            store.set_fault_plan(None)  # audit, don't mint new faults
            report = Scrubber(store).run()
    assert report.unfixable == 0, report.summary()
    assert result.repair_ticks == REQUESTS // REPAIR_EVERY
    rows.append(_row("repair-on", result))
    repair_active = {
        **_point(result),
        "fault_spec": FAULT_SPEC,
        "repair_every": REPAIR_EVERY,
        "faults_injected": plan.stats.latent_minted
        + plan.stats.fail_stops,
        "scrub": report.summary(),
    }

    emit(
        "bench_service",
        [
            f"code=tip n={N} stripes={STRIPES} chunk={CHUNK} "
            f"requests={REQUESTS} trace={WORKLOAD}",
            *format_table(
                ["config", "workers", "req/s", "p50 ms", "p99 ms",
                 "mean ms", "ticks"],
                rows,
            ),
        ],
    )
    _merge_json(sweep=sweep, repair_active=repair_active)


def _batch_row(label, result):
    return [
        label,
        result.batch_size if result.batch_size else "-",
        f"{result.throughput_iops:.0f}",
        f"{result.p50_latency_ms:.3f}",
        f"{result.p99_latency_ms:.3f}",
        f"{result.syscalls_per_request:.1f}",
        result.batches,
    ]


def test_service_batched_throughput_sweep():
    """Sweep dispatcher batch size under a standing open-loop queue.

    The worker sweep above is closed-loop, so it can never offer more
    than ``workers`` concurrent requests and batches would starve; here
    one submitter pushes the whole trace through
    :func:`repro.service.replay_batched`'s admission window instead, and
    the dispatcher's coalescing actually engages. Three guards:

    * **equivalence** — every batch size must produce the same device
      bytes and the same aggregate chunk ``IoCounters`` as the
      per-request path (coalescing is invisible at the chunk ledger);
    * **syscall floor** — batch 16 must issue at most 1/4 the
      backing-file syscalls of batch 1 at full size (a counter, not a
      timing; reduced-size runs guard 1/3 — a shorter trace has fewer
      same-stripe requests to merge);
    * **throughput floors** — batch 1 (inline degenerate batches) must
      stay within 0.95x of the unbatched per-request path, batch 16
      must reach 1.1x batch 1, and at full size some batch >= 16 must
      reach the recorded 1.3x headline (reduced-size runs keep only
      loose sanity floors — see below).

    Timing ratios on a shared box need drift control: absolute
    throughput here swings +-15% run to run, but *adjacent* runs see
    the same machine state. So every configuration is measured once per
    round, rounds repeat, and each guard compares the **median of the
    per-round ratios** — pairing cancels the drift, the median sheds
    the outliers. Equivalence and syscall counters are deterministic
    and asserted on every run.
    """
    trace = generate_trace(WORKLOAD, requests=REQUESTS, seed=42)

    def measure_unbatched():
        # Per-request baseline: single closed-loop worker, batch_size=0.
        # The one-partition split folds offsets into capacity the same
        # way the replay helpers do; reusing the folded trace for the
        # batched runs keeps the deterministic offset-derived payloads
        # identical.
        with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmpdir:
            with _make_store(tmpdir) as store:
                parts = split_disjoint(trace, 1, store)
                result = replay_concurrent(store, parts)
                image = store.read_bytes(0, store.capacity_bytes).copy()
        assert result.requests == REQUESTS
        return result, image, parts[0]

    def measure_batched(batch):
        with tempfile.TemporaryDirectory(prefix="bench-svc-") as tmpdir:
            with _make_store(tmpdir) as store:
                result = replay_batched(store, folded, batch_size=batch)
                image = store.read_bytes(0, store.capacity_bytes).copy()
        assert result.requests == REQUESTS
        assert np.array_equal(image, base_image), batch
        assert result.io == base_io, batch
        return result

    order = ("base", *BATCH_LEVELS)
    runs = {key: [] for key in order}
    base_image = base_io = folded = None
    for _ in range(ROUNDS):
        for key in order:
            if key == "base":
                result, image, part = measure_unbatched()
                if base_image is None:
                    base_image, base_io, folded = image, result.io, part
                else:
                    assert np.array_equal(image, base_image)
                    assert result.io == base_io
            else:
                result = measure_batched(key)
            runs[key].append(result)

    def med_ratio(numerator, denominator):
        """Median over rounds of the paired throughput ratio."""
        return statistics.median(
            num.throughput_iops / den.throughput_iops
            for num, den in zip(runs[numerator], runs[denominator])
        )

    best = {
        key: max(runs[key], key=lambda r: r.throughput_iops)
        for key in order
    }
    base = best["base"]
    rows = [_batch_row("unbatched", base)]
    rows += [_batch_row("batched", best[batch]) for batch in BATCH_LEVELS]
    points = [_point(best[batch]) for batch in BATCH_LEVELS]

    b1, b16 = best[1], best[16]
    full_size = REQUESTS >= 600
    # The 4x syscall criterion is defined on the full-size trace: a
    # shorter trace offers fewer same-stripe requests per batch, so the
    # coalescer has structurally less to merge. Reduced-size runs still
    # guard a 3x floor — on every run, since the counter is exact.
    syscall_floor = 4 if full_size else 3
    b1_syscalls = runs[1][0].syscalls.total
    for result in runs[16]:
        assert result.syscalls.total * syscall_floor <= b1_syscalls, (
            result.syscalls,
            runs[1][0].syscalls,
        )
    # Timing floors; at reduced size each replay is so short that even
    # the paired-median ratio wobbles, so only sanity floors apply —
    # the strict floors are the full-size CI bench-smoke's job.
    b1_vs_base = med_ratio(1, "base")
    assert b1_vs_base >= (0.95 if full_size else 0.85), b1_vs_base
    b16_vs_b1 = med_ratio(16, 1)
    assert b16_vs_b1 >= (1.1 if full_size else 1.0), b16_vs_b1
    speedup = {
        batch: round(med_ratio(batch, 1), 3) for batch in BATCH_LEVELS
    }
    if full_size:
        # Headline criterion, asserted only at full size where the
        # per-request Python overhead dominates enough to measure
        # stably: some batch >= 16 delivers >= 1.3x batch-1 throughput.
        assert max(speedup[16], speedup[64]) >= 1.3, speedup

    emit(
        "bench_service_batched",
        [
            f"code=tip n={N} stripes={STRIPES} chunk={CHUNK} "
            f"requests={REQUESTS} trace={WORKLOAD} open-loop",
            *format_table(
                ["config", "batch", "req/s", "p50 ms", "p99 ms",
                 "sys/req", "batches"],
                rows,
            ),
            f"median speedup vs batch=1 over {ROUNDS} rounds: {speedup}",
            "syscall reduction b16 vs b1: "
            f"{b1.syscalls.total / b16.syscalls.total:.1f}x",
        ],
    )
    _merge_json(
        batch_sweep={
            "baseline_unbatched": _point(base),
            "points": points,
            "rounds": ROUNDS,
            "b1_vs_unbatched_median_ratio": round(b1_vs_base, 3),
            "speedup_vs_batch1": {
                str(batch): speedup[batch] for batch in BATCH_LEVELS
            },
            "syscall_reduction_b16_vs_b1": round(
                b1.syscalls.total / b16.syscalls.total, 2
            ),
        }
    )
