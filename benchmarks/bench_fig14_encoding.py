"""Fig. 14: encoding performance — (a) speed in GiB/s on random memory,
(b) encoding complexity in XORs per data element.

The paper encodes 256 MB with 4 KB packets on one core; here the region
is scaled to 32 MB (pure-Python + numpy, same memory-bound regime). Shape
claims: TIP has the lowest XOR count per element (it attains the
3 - 3/(p-2) bound) and the best or near-best throughput.
"""

import pytest
from _common import FAMILIES, code_for, emit, format_table, record_json, scaled_bytes

from repro.analysis.xor_cost import encoding_xor_per_element
from repro.codec import measure_encode_throughput

N = 12            # the mid-range size of the paper's speed experiments
DATA_BYTES = scaled_bytes(32 << 20)
PACKET = 4096


@pytest.mark.parametrize("family", FAMILIES)
def test_fig14a_encoding_speed(benchmark, family):
    code = code_for(family, N)

    def encode_once():
        return measure_encode_throughput(
            code, data_bytes=DATA_BYTES, packet_size=PACKET, seed=1
        )

    result = benchmark.pedantic(encode_once, rounds=3, iterations=1)
    emit(
        f"fig14a_encoding_speed_{family}",
        [
            f"code={code.name} n={N}",
            f"throughput_gib_s={result.gib_per_second:.3f}",
            f"xors_per_element={result.xors_per_element:.3f}",
        ],
    )
    record_json(
        f"fig14a_encoding_speed_{family}",
        {
            "code": code.name,
            "n": N,
            "data_bytes": DATA_BYTES,
            "engine": "compiled",
            "throughput_gib_s": round(result.gib_per_second, 4),
            "xors_per_element": round(result.xors_per_element, 4),
        },
    )
    assert result.gib_per_second > 0


def test_fig14b_encoding_complexity(benchmark):
    def compute():
        return {
            family: encoding_xor_per_element(code_for(family, N))
            for family in FAMILIES
        }

    complexity = benchmark(compute)
    rows = [[family, f"{complexity[family]:.3f}"] for family in FAMILIES]
    emit(
        "fig14b_encoding_complexity",
        format_table(["code", "XORs/element"], rows),
    )
    # TIP attains the XOR lower bound; everyone else is strictly above.
    tip = complexity["tip"]
    for family in FAMILIES[1:]:
        assert complexity[family] > tip, family
    # Headline factor: the worst baseline costs >= 1.5x TIP's XORs.
    assert max(complexity.values()) / tip > 1.5
