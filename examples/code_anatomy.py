#!/usr/bin/env python3
"""Visualize the layouts and parity chains of the compared codes.

Renders each code's element grid the way the paper's Figs. 1-3 do —
data cells, parity cells per family — and prints one worked parity chain
per code, plus the update-penalty footprint of a sample write.

Run:  python examples/code_anatomy.py [n]
"""

from __future__ import annotations

import sys

from repro import make_code
from repro.codes.base import Cell

FAMILIES = ("tip", "star", "triple-star", "hdd1", "cauchy-rs")


def render_grid(code) -> list[str]:
    """ASCII layout: '.' data, 'P' parity, '-' structural empty."""
    symbol = {Cell.DATA: ".", Cell.PARITY: "P", Cell.EMPTY: "-"}
    header = "    " + " ".join(f"{c:>2d}" for c in range(code.cols))
    lines = [header]
    for r in range(code.rows):
        cells = " ".join(f" {symbol[code.kind(r, c)]}" for c in range(code.cols))
        lines.append(f"{r:>3d} {cells}")
    return lines


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    for family in FAMILIES:
        code = make_code(family, n)
        print("=" * 60)
        print(f"{family}  ->  {code.name}")
        print(f"  {code.rows} rows x {code.cols} disks, "
              f"{code.num_data} data + {code.num_parity} parity elements, "
              f"efficiency {code.storage_efficiency:.1%}")
        for line in render_grid(code):
            print("  " + line)
        parity, members = next(iter(code.chains.items()))
        rendered = " ^ ".join(f"C{r},{c}" for r, c in sorted(members)[:6])
        suffix = " ^ …" if len(members) > 6 else ""
        print(f"  example chain: C{parity[0]},{parity[1]} = {rendered}{suffix}")
        sample = code.data_positions[0]
        penalty = code.update_penalty(sample)
        print(f"  writing C{sample[0]},{sample[1]} touches "
              f"{len(penalty)} parity element(s)"
              + (" — optimal" if len(penalty) == code.faults else ""))
        print()


if __name__ == "__main__":
    main()
