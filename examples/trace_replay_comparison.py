#!/usr/bin/env python3
"""Compare the evaluated codes on an enterprise-style workload.

Replays a synthetic MSR-Cambridge-like trace (Table III statistics)
through (a) the write-cost analyzer and (b) the event-driven disk array
simulator — a miniature of the paper's Figs. 12-13 pipeline.

Run:  python examples/trace_replay_comparison.py [workload] [n]
"""

from __future__ import annotations

import sys

from repro import make_code
from repro.analysis import synthetic_write_cost
from repro.disksim import simulate_trace
from repro.traces import generate_trace, workload_names

FAMILIES = ("tip", "triple-star", "star", "cauchy-rs", "hdd1")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "src2_0"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    if workload not in workload_names():
        raise SystemExit(
            f"unknown workload {workload!r}; pick one of {workload_names()}"
        )

    trace = generate_trace(workload, requests=2500, seed=42)
    stats = trace.stats()
    print(f"workload {workload}: {stats.requests} requests, "
          f"{stats.write_fraction:.0%} writes, "
          f"avg {stats.avg_request_kb:.1f} KB, {stats.iops:.0f} IOPS")
    print(f"array size n = {n}, chunk = 8 KB\n")

    replay = trace.stretched(4.0)  # moderate utilization for the simulator
    print(f"{'code':14s} {'elems/write':>12s} {'mean resp (ms)':>15s} "
          f"{'vs tip':>7s}")
    baseline = None
    for family in FAMILIES:
        code = make_code(family, n)
        cost = synthetic_write_cost(code, trace)
        result = simulate_trace(code, replay, seed=1)
        if family == "tip":
            baseline = result
        ratio = result.mean_response_ms / baseline.mean_response_ms
        print(f"{family:14s} {cost:12.2f} {result.mean_response_ms:15.2f} "
              f"{ratio:6.2f}x")

    print("\nTIP-code touches the fewest elements per write (optimal "
          "update complexity), which translates directly into the lowest "
          "simulated response time under write-heavy load.")


if __name__ == "__main__":
    main()
