#!/usr/bin/env python3
"""TIP-code on arbitrary array sizes: shortening with adjusters (Sec. VII).

Walks the Fig. 16 scenario — shrinking TIP(p=7) from 8 disks to 6 — and
then builds TIP arrays for every size 4..16, showing which prime is used,
how many adjusters appear, and that triple-fault tolerance survives.

Run:  python examples/arbitrary_sizes.py
"""

from __future__ import annotations

import numpy as np

from repro import make_tip
from repro.codes.base import Cell
from repro.codes.tip import TipCode, tip_parameters


def describe(code) -> str:
    kinds = {Cell.DATA: 0, Cell.PARITY: 0, Cell.EMPTY: 0}
    for r in range(code.rows):
        for c in range(code.cols):
            kinds[code.kind(r, c)] += 1
    return (f"{code.cols} disks, {code.rows} rows, "
            f"{kinds[Cell.DATA]} data / {kinds[Cell.PARITY]} parity cells")


def main() -> None:
    # --- the Fig. 16 walk-through -------------------------------------
    print("Fig. 16: shorten TIP(p=7) from 8 disks to 6")
    full = TipCode(7)
    print(f"  native: {describe(full)}")
    from repro.codes.tip import _shorten_tip

    short = _shorten_tip(7, 2, name="tip-6of7")
    print(f"  shortened: {describe(short)}")
    # The removed diagonal parity C0,1's chain is re-homed on the adjuster
    # C1,6; after dropping two columns it reads C1,4 = C5,0 ^ C4,1 ^ C2,3.
    members = sorted(short.chains[(1, 4)])
    rendered = " ^ ".join(f"C{r},{c}" for r, c in members)
    print(f"  adjuster C1,4 = {rendered}")

    # Prove it still tolerates any 3 failures.
    stripe = short.random_stripe(packet_size=64, seed=1)
    damaged = stripe.copy()
    short.erase_columns(damaged, (0, 2, 4))
    short.decode(damaged, (0, 2, 4))
    assert np.array_equal(damaged, stripe)
    print("  triple-failure recovery verified\n")

    # --- every array size from 4 to 16 --------------------------------
    print(f"{'n':>3s} {'prime p':>8s} {'removed':>8s} {'adjusters':>10s} "
          f"{'MDS':>4s}")
    for n in range(4, 17):
        p, removed = tip_parameters(n)
        code = make_tip(n)
        native = TipCode(p)
        # Parity count is conserved by shortening; adjusters are the cells
        # that were data in the native layout but are parity here.
        rehomed = sum(
            1
            for pos in code.parity_positions
            if native.kind(pos[0], pos[1] + removed) == Cell.DATA
        )
        mds = code.is_mds() if n <= 12 else True  # larger checked in tests
        print(f"{n:3d} {p:8d} {removed:8d} {rehomed:10d} "
              f"{'yes' if mds else 'NO!':>4s}")
    print("\nEvery size uses the smallest prime with p+1 >= n; removed "
          "columns containing parity cells get adjusters on column p-1.")


if __name__ == "__main__":
    main()
