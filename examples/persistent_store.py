#!/usr/bin/env python3
"""A persistent erasure-coded store: files on disk, failures, scrubbing.

Uses :class:`repro.store.ArrayStore` — one backing file per "disk" — to
show the whole operational lifecycle: write data, lose three drives
(files wiped), serve reads degraded, rebuild online, and scrub for silent
corruption afterwards. Along the way the store's I/O counters prove the
paper's headline property live: a single-chunk write on TIP touches
exactly 1 data + 3 parity chunks (the delta fast path), not the whole
stripe.

Run:  python examples/persistent_store.py [directory]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import make_code
from repro.store import ArrayStore

CHUNK = 2048


def main() -> None:
    directory = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="tip-store-"))
    )
    code = make_code("tip", 8)
    store = ArrayStore(code, directory, stripes=12, chunk_bytes=CHUNK)
    print(f"store: {code.name} over {code.n} backing files in {directory}")
    print(f"capacity: {store.capacity_chunks} chunks "
          f"({store.capacity_chunks * CHUNK // 1024} KiB)\n")

    # Write a recognizable payload.
    rng = np.random.default_rng(99)
    payload = rng.integers(
        0, 256, size=(store.capacity_chunks, CHUNK), dtype=np.uint8
    )
    store.write_chunks(0, payload)
    assert store.scrub() == []
    print("payload written; scrub clean")

    # Optimal update complexity, observed: a single-chunk write goes
    # through the delta read-modify-write fast path and touches exactly
    # 1 data + 3 parity chunks — Table 2's property, as real file I/O.
    update = rng.integers(0, 256, size=(1, CHUNK), dtype=np.uint8)
    store.write_chunks(37, update)
    payload[37] = update[0]
    io = store.last_io
    print(
        f"single-chunk write: read {io.data_chunks_read} data + "
        f"{io.parity_chunks_read} parity chunks, wrote "
        f"{io.data_chunks_written} data + {io.parity_chunks_written} "
        f"parity chunks (delta fast path)"
    )
    assert io.parity_chunks_written == 3 and io.data_chunks_written == 1

    # Three drives die — their files are wiped, as a hot-swap would.
    for disk in (1, 4, 6):
        store.fail_disk(disk)
    print("disks 1, 4, 6 failed (backing files zeroed)")

    # Degraded service: reads still return correct data.
    sample = store.read_chunks(17, 40)
    assert np.array_equal(sample, payload[17:57])
    print("degraded reads serve correct data (on-the-fly reconstruction)")

    # A degraded write also works and stays consistent.
    update = rng.integers(0, 256, size=(5, CHUNK), dtype=np.uint8)
    store.write_chunks(20, update)
    payload[20:25] = update
    print("degraded write accepted")

    # Online rebuild.
    stripes = store.rebuild()
    print(f"rebuilt {stripes} stripes; array healthy")
    assert store.scrub() == []
    everything = store.read_chunks(0, store.capacity_chunks)
    assert np.array_equal(everything, payload)
    print("full readback matches; scrub clean")

    # Silent corruption is caught by scrubbing.
    victim = directory / "disk003.img"
    raw = bytearray(victim.read_bytes())
    raw[5000] ^= 0x01
    victim.write_bytes(bytes(raw))
    corrupt = store.scrub()
    print(f"injected a single flipped bit on disk 3 -> scrub flags "
          f"stripe(s) {corrupt}")
    assert corrupt


if __name__ == "__main__":
    main()
