#!/usr/bin/env python3
"""A virtual 3DFT block device: store files, lose three disks, rebuild.

Demonstrates the library as the core of an actual storage array: a
multi-stripe volume striped over a TIP-coded array, a whole-array rebuild
after a triple failure using the paper's own algebraic decoder (Sec.
III-D), and an integrity audit afterward.

Run:  python examples/raid_array_recovery.py
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro import TipCode


CHUNK = 4096


class TipVolume:
    """A tiny logical volume on top of a native TIP-coded disk array."""

    def __init__(self, p: int, stripes: int) -> None:
        self.code = TipCode(p)
        self.stripes = stripes
        self.chunks = self.code.num_data * stripes
        # disks[d] holds the column packets of every stripe, like a real
        # drive would: shape (stripes * rows, CHUNK).
        self.array = np.zeros(
            (stripes, self.code.rows, self.code.cols, CHUNK), dtype=np.uint8
        )

    @property
    def capacity_bytes(self) -> int:
        return self.chunks * CHUNK

    def write(self, data: bytes) -> None:
        """Fill the volume from the start with ``data`` (zero padded)."""
        if len(data) > self.capacity_bytes:
            raise ValueError("data exceeds volume capacity")
        padded = data.ljust(self.capacity_bytes, b"\0")
        view = np.frombuffer(padded, dtype=np.uint8).reshape(
            self.chunks, CHUNK
        )
        for stripe_index in range(self.stripes):
            begin = stripe_index * self.code.num_data
            packets = view[begin: begin + self.code.num_data]
            self.array[stripe_index] = self.code.make_stripe(packets)

    def read(self) -> bytes:
        out = bytearray()
        for stripe_index in range(self.stripes):
            data = self.code.extract_data(self.array[stripe_index])
            out.extend(data.tobytes())
        return bytes(out)

    def fail_disks(self, disks: tuple[int, ...]) -> None:
        for disk in disks:
            self.array[:, :, disk, :] = 0

    def rebuild(self, disks: tuple[int, ...]) -> int:
        """Rebuild failed disks stripe by stripe; returns stripes fixed."""
        decoder = self.code.algebraic_decoder()
        for stripe_index in range(self.stripes):
            decoder.decode(self.array[stripe_index], disks)
        return self.stripes

    def audit(self) -> bool:
        return all(
            self.code.verify_stripe(self.array[s]) for s in range(self.stripes)
        )


def main() -> None:
    volume = TipVolume(p=11, stripes=24)
    print(f"volume: {volume.code.name}, {volume.code.n} disks, "
          f"{volume.capacity_bytes // 1024} KiB usable")

    # Store a deterministic "document corpus".
    rng = np.random.default_rng(2015)
    corpus = rng.integers(
        0, 256, size=volume.capacity_bytes - 1000, dtype=np.uint8
    ).tobytes()
    digest_before = hashlib.sha256(corpus).hexdigest()
    volume.write(corpus)
    print(f"stored {len(corpus)} bytes, sha256={digest_before[:16]}…")
    assert volume.audit()

    # Catastrophe: three simultaneous whole-disk failures.
    failed = (0, 5, 11)
    volume.fail_disks(failed)
    print(f"\ndisks {failed} failed — array degraded")

    # Rebuild with the paper's cross-pattern algebraic decoder.
    stripes = volume.rebuild(failed)
    print(f"rebuilt {stripes} stripes via syndromes + cross patterns")

    recovered = volume.read()[: len(corpus)]
    digest_after = hashlib.sha256(recovered).hexdigest()
    print(f"sha256 after rebuild: {digest_after[:16]}…")
    assert digest_after == digest_before, "data corruption!"
    assert volume.audit()
    print("integrity audit passed: every parity chain verifies")


if __name__ == "__main__":
    main()
