#!/usr/bin/env python3
"""Why triple-fault tolerance? The paper's Sec. I motivation, quantified.

Computes the mean time to data loss (MTTDL) of RAID-5 / RAID-6 / 3DFT
arrays with an exact Markov model, cross-checks it with Monte-Carlo
failure injection, and shows the regime where two parities stop being
enough — large arrays with realistic (slow) rebuilds.

Run:  python examples/reliability_motivation.py
"""

from __future__ import annotations

from repro.reliability import ArrayReliability, simulate_mttdl


def main() -> None:
    mttf = 1_000_000.0  # the "1,000,000 hours" of Schroeder & Gibson's title
    print("MTTDL in years (disk MTTF 1M hours, 24h rebuild)\n")
    print(f"{'disks':>6s} {'RAID-5':>12s} {'RAID-6':>12s} {'3DFT':>12s}")
    for disks in (8, 12, 24, 48, 96):
        row = []
        for faults in (1, 2, 3):
            model = ArrayReliability(
                disks=disks, faults_tolerated=faults,
                disk_mttf_hours=mttf, rebuild_hours=24.0,
            )
            row.append(model.mttdl_years())
        print(f"{disks:>6d} " + " ".join(f"{v:12.3e}" for v in row))

    print("\nSlow rebuilds (72h — a loaded multi-TB drive) at 48 disks:")
    for faults, label in ((1, "RAID-5"), (2, "RAID-6"), (3, "3DFT")):
        model = ArrayReliability(
            disks=48, faults_tolerated=faults,
            disk_mttf_hours=mttf, rebuild_hours=72.0,
        )
        print(f"  {label}: {model.mttdl_years():.3e} years "
              f"(P[loss in a year] = {model.annual_loss_probability():.2e})")

    # Cross-validate the closed form with failure injection on a
    # configuration that fails fast enough to simulate.
    exact = ArrayReliability(
        disks=8, faults_tolerated=1,
        disk_mttf_hours=2000.0, rebuild_hours=200.0,
    ).mttdl_hours()
    sim = simulate_mttdl(
        8, 1, disk_mttf_hours=2000.0, rebuild_hours=200.0,
        trials=4000, seed=7,
    )
    print(f"\nMonte-Carlo cross-check (8 disks, stress parameters):")
    print(f"  Markov exact:  {exact:10.1f} h")
    print(f"  simulated:     {sim.mean_hours:10.1f} h "
          f"({sim.trials} trials)")
    error = abs(sim.mean_hours - exact) / exact
    print(f"  relative error {error:.1%}")
    assert error < 0.1
    print("\nConclusion: at datacenter scale, double-fault tolerance "
          "leaves a non-negligible annual loss probability; a third "
          "parity buys ~4 orders of magnitude — if its write penalty is "
          "affordable, which is exactly the problem TIP-code solves.")


if __name__ == "__main__":
    main()
