#!/usr/bin/env python3
"""Quickstart: protect data with TIP-code and survive three disk failures.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # A 12-disk array: TIP picks p = 11, giving 9 data disks + the
    # equivalent of 3 parity disks embedded across the stripe.
    code = repro.make_code("tip", n=12)
    print(f"code: {code.name}")
    print(f"disks: {code.n}, elements/disk: {code.rows}")
    print(f"data elements/stripe: {code.num_data} "
          f"(storage efficiency {code.storage_efficiency:.1%})")

    # Write a stripe of application data (4 KB chunks here).
    rng = np.random.default_rng(7)
    payload = rng.integers(
        0, 256, size=(code.num_data, 4096), dtype=np.uint8
    )
    stripe = code.make_stripe(payload)
    assert code.verify_stripe(stripe)
    print("\nstripe encoded; all parity chains verify")

    # Three disks fail at once.
    failed = (1, 4, 9)
    code.erase_columns(stripe, failed)
    print(f"disks {failed} erased")

    # Recover. The generic decoder inverts the parity-check system once
    # and replays a scheduled XOR program (Sec. IV of the paper).
    code.decode(stripe, failed)
    recovered = code.extract_data(stripe)
    assert np.array_equal(recovered, payload)
    print("all data recovered byte-for-byte")

    # The headline property: writing one chunk costs exactly 4 element
    # writes (1 data + 3 independent parities), for every chunk.
    penalties = {
        len(code.update_penalty(pos)) for pos in code.data_positions
    }
    print(f"\nparities touched per single-chunk write: {sorted(penalties)} "
          "(optimal for triple-fault tolerance)")


if __name__ == "__main__":
    main()
