"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so the
PEP 517 editable-install path (which shells out to ``bdist_wheel``) cannot
run. Keeping a plain ``setup.py`` lets ``pip install -e .`` fall back to
the classic ``setup.py develop`` flow. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
